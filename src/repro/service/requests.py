"""Canonical, content-addressed job requests.

A job is identified by *what it computes*, never by who asked or when:
the request's identity is the canonical JSON of its topology digest, its
kind-specific parameters (weights, plugin-term triples, method, fully
expanded options, seed), and — for simulation kinds — the digests of its
input matrices.  :func:`request_digest` hashes that identity
(:func:`repro.persist.json_digest`), giving the key under which
concurrent identical submissions fan in to one computation and completed
results are cached (:mod:`repro.service.store`).

Canonicalization rules, chosen so semantically identical requests always
collide:

* ``options`` are expanded to the options class's **full field set**
  (via :func:`repro.core.options.coerce_options` + ``asdict``), so
  ``{"max_iterations": 100}`` and an explicit dataclass with the same
  defaults digest identically;
* plugin ``terms`` go through
  :func:`~repro.core.registry.normalize_extra_terms` and are **omitted
  when empty**, matching the sweep-cell convention — which is what lets
  :func:`request_from_cell` map a PR 8 sweep record onto the exact
  request digest a live submission of the same work produces;
* matrices contribute :func:`repro.persist.array_digest` (value- and
  layout-exact), not their floats, keeping identity payloads small.

:func:`execute_request` is the single compute path for every kind; the
simulation kinds route through the :func:`repro.simulate` façade.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.api import OPTIMIZER_REGISTRY
from repro.core.cost import LINALG_MODES, CostWeights, CoverageCost
from repro.core.options import coerce_options
from repro.core.registry import normalize_extra_terms
from repro.persist import (
    SERVICE_REQUEST_SCHEMA,
    array_digest,
    json_digest,
    topology_from_dict,
    topology_to_dict,
)
from repro.simulation.api import SIMULATOR_REGISTRY
from repro.topology.model import Topology

#: Job kinds the service accepts.
KINDS = ("optimize", "simulate", "team")


@dataclass(frozen=True, eq=False)
class JobRequest:
    """One content-addressed unit of service work.

    ``params`` is the canonical JSON-plain parameter dict produced by
    the kind's constructor function (:func:`optimize_request`,
    :func:`simulation_request`, :func:`team_request`) — build requests
    through those, not directly.  ``matrices`` carries the simulation
    kinds' input matrices (empty for ``optimize``).
    """

    kind: str
    topology: Topology
    params: dict
    matrices: Tuple[np.ndarray, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown kind {self.kind!r}; valid kinds: {KINDS}"
            )


def _canonical_terms(terms):
    """Normalized triples in the sweep's JSON list form."""
    return [
        [name, float(weight), dict(params)]
        for name, weight, params in normalize_extra_terms(terms)
    ]


def _canonical_options(options_class, options, method):
    """The full-field-set dict that makes options part of identity."""
    coerced = coerce_options(options_class, options, method=method)
    if coerced is None:
        coerced = options_class()
    return asdict(coerced)


def optimize_request(
    topology: Topology,
    alpha: float = 1.0,
    beta: float = 1.0,
    epsilon: float = 1e-4,
    method: str = "perturbed",
    seed: int = 0,
    options=None,
    terms=(),
    linalg: str = "auto",
    starts: int = 1,
) -> JobRequest:
    """Build a canonical optimization request.

    Mirrors :func:`repro.optimize`'s surface: ``method`` names an
    :data:`~repro.core.api.OPTIMIZER_REGISTRY` entry, ``options`` may be
    the method's dataclass or a mapping (unknown keys raise), ``terms``
    composes plugin objectives, ``starts`` sizes the multi-start
    portfolio (ignored by single-start methods, and then excluded from
    the request identity).
    """
    if method not in OPTIMIZER_REGISTRY:
        known = ", ".join(sorted(OPTIMIZER_REGISTRY))
        raise ValueError(
            f"unknown method {method!r}; available methods: {known}"
        )
    if linalg not in LINALG_MODES:
        raise ValueError(
            f"unknown linalg {linalg!r}; valid: {LINALG_MODES}"
        )
    if starts < 1:
        raise ValueError(f"starts must be >= 1, got {starts}")
    spec = OPTIMIZER_REGISTRY[method]
    params = {
        "method": method,
        "alpha": float(alpha),
        "beta": float(beta),
        "epsilon": float(epsilon),
        "seed": int(seed),
        "linalg": linalg,
        "options": _canonical_options(
            spec.options_class, options, method
        ),
    }
    if method == "multistart":
        params["starts"] = int(starts)
    canonical_terms = _canonical_terms(terms)
    if canonical_terms:
        params["terms"] = canonical_terms
    return JobRequest(kind="optimize", topology=topology, params=params)


def simulation_request(
    topology: Topology,
    matrix: np.ndarray,
    transitions: int,
    seed: int = 0,
    options=None,
) -> JobRequest:
    """Build a canonical single-sensor simulation request."""
    from repro.simulation.engine import SimulationOptions

    matrix = np.ascontiguousarray(matrix, dtype=float)
    params = {
        "transitions": int(transitions),
        "seed": int(seed),
        "options": _canonical_options(
            SimulationOptions, options, "single"
        ),
    }
    return JobRequest(
        kind="simulate", topology=topology, params=params,
        matrices=(matrix,),
    )


def team_request(
    topology: Topology,
    matrices,
    horizon: float,
    seed: int = 0,
    options=None,
) -> JobRequest:
    """Build a canonical team simulation request.

    ``matrices`` is one matrix per sensor (pass the same matrix ``K``
    times for a homogeneous team); ``options`` coerces to
    :class:`~repro.simulation.api.TeamOptions`.
    """
    from repro.simulation.api import TeamOptions

    stack = tuple(
        np.ascontiguousarray(m, dtype=float) for m in matrices
    )
    if not stack:
        raise ValueError("team requests need at least one matrix")
    coerced = coerce_options(TeamOptions, options, method="team")
    if coerced is None:
        coerced = TeamOptions()
    params = {
        "horizon": float(horizon),
        "seed": int(seed),
        "options": {
            "engine": coerced.engine,
            "starts": None if coerced.starts is None
            else list(coerced.starts),
        },
    }
    return JobRequest(
        kind="team", topology=topology, params=params, matrices=stack
    )


def request_from_cell(cell) -> JobRequest:
    """The service request computing exactly a sweep cell's work.

    Reuses the cell-to-options expansion of
    :func:`repro.sweep.grid.run_cell` (iteration budget, disabled
    history, shared stall budget), so the request's execution — and
    therefore its result payload's ``"result"`` block — is identical to
    the record a sweep shard streams for the same cell.  This is the
    bridge :meth:`repro.service.store.ResultStore.import_sweep` uses to
    pre-warm the cache from past sweeps.
    """
    from repro.sweep.grid import _cell_options, build_topology

    spec = OPTIMIZER_REGISTRY[cell.method]
    return optimize_request(
        build_topology(cell),
        alpha=cell.alpha,
        beta=cell.beta,
        epsilon=cell.epsilon,
        method=cell.method,
        seed=cell.seed,
        options=_cell_options(cell, spec),
        terms=cell.terms,
        linalg=cell.linalg,
        starts=cell.starts,
    )


# ------------------------------------------------------------------ #
# Identity, digests, and the executable JSON form
# ------------------------------------------------------------------ #


def request_identity(request: JobRequest) -> dict:
    """The canonical identity structure :func:`request_digest` hashes.

    Topology and matrices appear as digests — identity is about *what*
    is computed, and two byte-identical inputs share a digest by
    construction.
    """
    identity = {
        "schema": SERVICE_REQUEST_SCHEMA,
        "kind": request.kind,
        "topology": json_digest(topology_to_dict(request.topology)),
        "params": request.params,
    }
    if request.matrices:
        identity["matrices"] = [
            array_digest(m) for m in request.matrices
        ]
    return identity


def request_digest(request: JobRequest) -> str:
    """Content digest of a request — the service's dedup/cache key."""
    return json_digest(request_identity(request))


def request_to_dict(request: JobRequest) -> dict:
    """Executable JSON form (spool files, cross-process shipping).

    Unlike :func:`request_identity` this embeds the full topology and
    matrices, so :func:`request_from_dict` can rebuild a runnable
    request from the file alone.
    """
    payload = {
        "schema": SERVICE_REQUEST_SCHEMA,
        "kind": request.kind,
        "topology": topology_to_dict(request.topology),
        "params": request.params,
    }
    if request.matrices:
        payload["matrices"] = [m.tolist() for m in request.matrices]
    return payload


def request_from_dict(data: dict) -> JobRequest:
    """Rebuild a request written by :func:`request_to_dict`.

    Re-canonicalizes through the kind's constructor, so a hand-written
    file with partial options still lands on the canonical digest.
    """
    schema = data.get("schema")
    if schema != SERVICE_REQUEST_SCHEMA:
        raise ValueError(
            f"expected schema {SERVICE_REQUEST_SCHEMA!r}, got {schema!r}"
        )
    kind = data.get("kind")
    if kind not in KINDS:
        raise ValueError(
            f"unknown kind {kind!r}; valid kinds: {KINDS}"
        )
    topology = topology_from_dict(data["topology"])
    params = dict(data.get("params") or {})
    matrices = [
        np.asarray(m, dtype=float)
        for m in data.get("matrices") or ()
    ]

    def _take(allowed):
        unknown = sorted(set(params) - set(allowed))
        if unknown:
            raise ValueError(
                f"unknown params for kind {kind!r}: "
                f"{', '.join(unknown)}"
            )

    if kind == "optimize":
        _take({"method", "alpha", "beta", "epsilon", "seed", "linalg",
               "options", "terms", "starts"})
        if matrices:
            raise ValueError("optimize requests carry no matrices")
        terms = [
            (name, weight, params_dict)
            for name, weight, params_dict in params.get("terms", ())
        ]
        return optimize_request(
            topology,
            alpha=params.get("alpha", 1.0),
            beta=params.get("beta", 1.0),
            epsilon=params.get("epsilon", 1e-4),
            method=params.get("method", "perturbed"),
            seed=params.get("seed", 0),
            options=params.get("options"),
            terms=terms,
            linalg=params.get("linalg", "auto"),
            starts=params.get("starts", 1),
        )
    if kind == "simulate":
        _take({"transitions", "seed", "options"})
        if len(matrices) != 1:
            raise ValueError(
                "simulate requests carry exactly one matrix, got "
                f"{len(matrices)}"
            )
        if "transitions" not in params:
            raise ValueError("simulate requests need transitions")
        return simulation_request(
            topology, matrices[0],
            transitions=params["transitions"],
            seed=params.get("seed", 0),
            options=params.get("options"),
        )
    _take({"horizon", "seed", "options"})
    if not matrices:
        raise ValueError("team requests need at least one matrix")
    if "horizon" not in params:
        raise ValueError("team requests need horizon")
    options = params.get("options")
    if isinstance(options, dict) and options.get("starts") is not None:
        options = dict(options)
        options["starts"] = tuple(options["starts"])
    return team_request(
        topology, matrices,
        horizon=params["horizon"],
        seed=params.get("seed", 0),
        options=options,
    )


# ------------------------------------------------------------------ #
# Execution — the one compute path for every kind
# ------------------------------------------------------------------ #


def _simulation_payload(sim) -> dict:
    """JSON-plain form of a single-sensor simulation result."""
    payload = {
        "transitions": int(sim.transitions),
        "total_time": float(sim.total_time),
        "coverage_shares": sim.coverage_shares.tolist(),
        "physical_coverage_shares":
            sim.physical_coverage_shares.tolist(),
        "delta_c": float(sim.delta_c),
        "exposure_transitions": sim.exposure_transitions.tolist(),
        "e_bar_transitions": float(sim.e_bar_transitions),
        "exposure_physical": sim.exposure_physical.tolist(),
        "e_bar_physical_normalized":
            float(sim.e_bar_physical_normalized),
        "mean_transition_duration":
            float(sim.mean_transition_duration),
        "visit_counts": sim.visit_counts.tolist(),
        "occupancy": sim.occupancy.tolist(),
        "start_state": int(sim.start_state),
        "end_state": int(sim.end_state),
    }
    if sim.path is not None:
        payload["path"] = sim.path.tolist()
    return payload


def _team_payload(team) -> dict:
    """JSON-plain form of a team simulation result."""
    return {
        "sensors": int(team.sensors),
        "horizon": float(team.horizon),
        "coverage_shares": team.coverage_shares.tolist(),
        "per_sensor_shares": team.per_sensor_shares.tolist(),
        "exposure_mean": [
            None if np.isnan(value) else float(value)
            for value in team.exposure_mean
        ],
        "exposure_counts": team.exposure_counts.tolist(),
        "transitions": team.transitions.tolist(),
    }


def build_cost(request: JobRequest) -> CoverageCost:
    """The :class:`CoverageCost` an optimize request describes."""
    if request.kind != "optimize":
        raise ValueError(
            f"kind {request.kind!r} requests have no cost"
        )
    params = request.params
    return CoverageCost(
        request.topology,
        CostWeights(
            alpha=params["alpha"], beta=params["beta"],
            epsilon=params["epsilon"],
        ),
        linalg=params["linalg"],
        extra_terms=[
            (name, weight, p)
            for name, weight, p in params.get("terms", ())
        ],
    )


def optimize_result_payload(result) -> dict:
    """The optimize payload block (field-for-field the sweep record's
    ``"result"`` block, so imported sweep cells and live computations
    are interchangeable)."""
    return {
        "u": float(result.u),
        "u_eps": float(result.u_eps),
        "best_u_eps": float(result.best_u_eps),
        "delta_c": float(result.delta_c),
        "e_bar": float(result.e_bar),
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
        "stop_reason": str(result.stop_reason),
    }


def execute_request(
    request: JobRequest, checkpoint=None
) -> dict:
    """Compute a request's result payload.

    ``checkpoint`` (see :class:`repro.service.runner.JobCheckpoint`)
    enables per-accepted-iteration snapshots for the ``"perturbed"``
    optimizer — a killed run restores from the last snapshot and
    finishes bit-identically to an uninterrupted one.  Other kinds and
    methods run to completion in one piece (their single runs are
    short; the cache, not the checkpoint, is their recovery story).

    Simulation kinds route through the :func:`repro.simulate` façade.
    """
    from repro.simulation.api import simulate

    params = request.params
    if request.kind == "optimize":
        cost = build_cost(request)
        method = params["method"]
        spec = OPTIMIZER_REGISTRY[method]
        options = coerce_options(
            spec.options_class, params["options"], method=method
        )
        if method == "perturbed" and checkpoint is not None:
            result = _run_perturbed_checkpointed(
                cost, options, params["seed"], checkpoint
            )
        else:
            from repro.core.api import optimize

            kwargs = {}
            if spec.accepts_seed:
                kwargs["seed"] = params["seed"]
            if method == "multistart":
                kwargs["random_starts"] = params["starts"]
            result = optimize(
                cost, method=method, options=options, **kwargs
            )
            if method == "multistart":
                result = result.best
        return {
            "result": optimize_result_payload(result),
            "matrix": np.asarray(
                result.best_matrix, dtype=float
            ).tolist(),
        }
    if request.kind == "simulate":
        from repro.simulation.engine import SimulationOptions

        sim = simulate(
            request.topology, request.matrices[0], kind="single",
            transitions=params["transitions"], seed=params["seed"],
            options=SimulationOptions(**params["options"]),
        )
        return {"result": _simulation_payload(sim)}
    # kind == "team"
    options = dict(params["options"])
    if options.get("starts") is not None:
        options["starts"] = tuple(options["starts"])
    from repro.simulation.api import TeamOptions

    team = simulate(
        request.topology, list(request.matrices), kind="team",
        horizon=params["horizon"], seed=params["seed"],
        options=TeamOptions(**options),
    )
    return {"result": _team_payload(team)}


def _run_perturbed_checkpointed(cost, options, seed, checkpoint):
    """Drive a :class:`PerturbedWalk` with per-accepted-iteration
    snapshots.

    Uses the same :func:`~repro.core.perturbed.advance_walk` iteration
    driver as :func:`~repro.core.perturbed.optimize_perturbed`, so the
    trajectory — checkpointed, resumed, or neither — is bit-identical
    to the plain entry point.
    """
    from repro.core.perturbed import PerturbedWalk, advance_walk
    from repro.utils.rng import as_generator

    snapshot = checkpoint.load()
    if snapshot is not None:
        walk = PerturbedWalk.restore(cost, snapshot, options)
    else:
        walk = PerturbedWalk(cost, None, as_generator(seed), options)
    accepted = walk.accepted_steps
    while advance_walk(cost, walk, options):
        if walk.accepted_steps > accepted:
            accepted = walk.accepted_steps
            checkpoint.save(walk.snapshot())
    checkpoint.clear()
    return walk.result()
