"""Coverage-as-a-service: async job runner + content-addressed cache.

The service layer turns the repo's optimizers and simulators into
idempotent jobs: a request is canonical JSON (topology digest, weights,
plugin terms, method, fully expanded options, seed — plus matrix digests
for simulation kinds), its digest is the job's identity, and identical
work is never done twice — concurrent duplicates fan in to one
computation (:mod:`repro.service.queue`), completed results are served
from a verified LRU disk cache (:mod:`repro.service.store`), and past
sweep shards bulk-import to pre-warm it.  Long jobs checkpoint per
accepted iteration and resume bit-identically
(:mod:`repro.service.runner`).  See ``docs/service.md``.
"""

from repro.service.queue import FanInQueue, ServiceStats
from repro.service.requests import (
    KINDS,
    JobRequest,
    execute_request,
    optimize_request,
    request_digest,
    request_from_cell,
    request_from_dict,
    request_identity,
    request_to_dict,
    simulation_request,
    team_request,
)
from repro.service.runner import (
    CoverageService,
    JobCheckpoint,
    serve_spool,
)
from repro.service.store import ResultStore

__all__ = [
    "KINDS",
    "JobRequest",
    "optimize_request",
    "simulation_request",
    "team_request",
    "request_from_cell",
    "request_identity",
    "request_digest",
    "request_to_dict",
    "request_from_dict",
    "execute_request",
    "ResultStore",
    "FanInQueue",
    "ServiceStats",
    "CoverageService",
    "JobCheckpoint",
    "serve_spool",
]
