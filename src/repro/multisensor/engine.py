"""Team simulation: ``K`` independent sensors on one topology.

Each sensor runs the same physical process as the single-sensor engine —
straight-line travel, pauses, pass-by chords — with its own RNG stream
and its own transition matrix.  The team's coverage of a PoI is the
*union* of the sensors' in-range intervals on a shared wall-clock; team
exposure segments are the gaps of that union.

Sensors are simulated to a common physical ``horizon`` (seconds), not a
common transition count: different matrices move at different speeds,
and the union only makes sense on an aligned clock.

Two interchangeable engines implement the measurement, mirroring the
single-sensor :class:`~repro.simulation.engine.SimulationOptions`
convention:

* ``"vectorized"`` (the default) — pre-samples every sensor's path and
  replays it through the shared array interval kernels
  (:mod:`repro.multisensor.vectorized`);
* ``"loop"`` — the per-event reference implementation in this module,
  one Python iteration per transition and one tuple per interval.

Both consume each sensor's spawned RNG stream identically and compute
every metric with the same floating-point operations, so for any inputs
they return **bit-identical** :class:`TeamSimulationResult` values;
``tests/multisensor/test_engine_equivalence.py`` holds the guarantee in
place and ``benchmarks/perf/bench_team.py`` re-checks it on every run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exec import resolve_executor
from repro.simulation.engine import ENGINES
from repro.simulation.events import IntervalAccumulator
from repro.topology.model import Topology
from repro.utils.linalg import cumulative_rows, is_row_stochastic
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import check_square


@dataclass(frozen=True)
class TeamSimulationResult:
    """Measured behavior of a sensor team.

    All times are physical seconds on the shared clock, which runs from
    ``0`` to ``horizon``.

    **Start-state convention.**  Each sensor begins the measured window
    at physical time zero already located at its start PoI — drawn
    uniformly from the sensor's own spawned stream when no explicit
    ``starts`` are given (the draw consumes that stream *before* its
    transition uniforms).  The start PoI's coverage begins with the
    sensor's first transition interval (a dwell or the departure leg),
    exactly like the single-sensor engine's occupancy convention, and a
    PoI counts an exposure segment from time zero only if it is uncovered
    until some sensor's first interval there.  Per-sensor ``transitions``
    counts include the final transition that crosses the horizon (its
    intervals are clipped to ``[0, horizon]``).

    Attributes
    ----------
    sensors:
        Team size ``K``.
    horizon:
        Length of the measured window.
    coverage_shares:
        Per-PoI fraction of the window covered by *at least one* sensor
        (the union of the team's in-range intervals).
    per_sensor_shares:
        ``(K, M)`` array of each sensor's individual coverage fractions.
    exposure_mean:
        Per-PoI mean length of maximal uncovered intervals (``nan`` for a
        PoI with no completed gap).  The stretch after the last covered
        interval up to the horizon is an *incomplete* gap and is not
        counted.
    exposure_counts:
        Per-PoI number of completed uncovered intervals.
    transitions:
        Per-sensor number of transitions begun within the horizon.
    """

    sensors: int
    horizon: float
    coverage_shares: np.ndarray
    per_sensor_shares: np.ndarray
    exposure_mean: np.ndarray
    exposure_counts: np.ndarray
    transitions: np.ndarray

    @property
    def size(self) -> int:
        """Number of PoIs."""
        return self.coverage_shares.shape[0]


def _sensor_intervals(
    topology: Topology,
    matrix: np.ndarray,
    horizon: float,
    rng: np.random.Generator,
    start: Optional[int],
) -> tuple:
    """Simulate one sensor; return (per-PoI interval lists, transitions).

    Intervals are clipped to ``[0, horizon]`` and emitted in start order.
    """
    size = topology.size
    cumulative = cumulative_rows(matrix)
    travel_times = topology.travel_times
    pauses = topology.pause_times

    table = topology.chord_table()
    chords = {
        (origin, destination): table.leg(origin, destination)
        for origin in range(size)
        for destination in range(size)
        if origin != destination
    }

    intervals: List[List[tuple]] = [[] for _ in range(size)]
    state = int(rng.integers(size)) if start is None else start
    clock = 0.0
    transitions = 0
    while clock < horizon:
        origin = state
        destination = int(
            np.searchsorted(cumulative[origin], rng.random(), side="right")
        )
        duration = travel_times[origin, destination]
        if origin == destination:
            intervals[origin].append((clock, clock + duration))
        else:
            travel = duration - pauses[destination]
            arrival = clock + travel
            for poi, t_in, t_out in chords[origin, destination]:
                intervals[poi].append(
                    (clock + t_in * travel, clock + t_out * travel)
                )
            intervals[destination].append((arrival, arrival + duration
                                           - travel))
        clock += duration
        state = destination
        transitions += 1
    # Clip to the horizon.
    clipped: List[List[tuple]] = [[] for _ in range(size)]
    for poi in range(size):
        for lo, hi in intervals[poi]:
            if lo >= horizon:
                continue
            clipped[poi].append((lo, min(hi, horizon)))
    return clipped, transitions


def simulate_team(
    topology: Topology,
    matrices: Sequence[np.ndarray],
    horizon: Optional[float] = None,
    seed: RandomState = None,
    starts: Optional[Sequence[int]] = None,
    engine: str = "vectorized",
    *,
    duration: Optional[float] = None,
) -> TeamSimulationResult:
    """Simulate a team of sensors for ``horizon`` seconds.

    Parameters
    ----------
    topology:
        The shared PoI layout.
    matrices:
        One row-stochastic matrix per sensor.  Pass the same matrix ``K``
        times for a homogeneous team.
    horizon:
        Physical length of the measured window, seconds.
    seed:
        Master seed; each sensor gets an independent spawned stream.
    starts:
        Optional per-sensor start PoIs (defaults to independent uniform
        draws, one from each sensor's own stream — see the start-state
        convention on :class:`TeamSimulationResult`).
    engine:
        ``"vectorized"`` (default) or the per-event ``"loop"``
        reference; both produce bit-identical results.
    duration:
        Deprecated spelling of ``horizon`` kept for drifted callers; it
        warns and will be removed — use ``repro.simulate(topology,
        matrices, kind="team", horizon=...)``.
    """
    if duration is not None:
        warnings.warn(
            "simulate_team(duration=...) is deprecated; pass horizon= "
            "— or use the façade: repro.simulate(topology, matrices, "
            "kind='team', horizon=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        if horizon is None:
            horizon = duration
    if horizon is None:
        raise TypeError(
            "simulate_team() missing required argument: 'horizon'"
        )
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    matrices = [check_square(f"matrices[{k}]", m)
                for k, m in enumerate(matrices)]
    if not matrices:
        raise ValueError("at least one sensor matrix is required")
    size = topology.size
    for index, matrix in enumerate(matrices):
        if matrix.shape[0] != size:
            raise ValueError(
                f"matrices[{index}] has size {matrix.shape[0]}, topology "
                f"has {size} PoIs"
            )
        if not is_row_stochastic(matrix):
            raise ValueError(f"matrices[{index}] is not row-stochastic")
    if starts is not None and len(starts) != len(matrices):
        raise ValueError(
            f"starts has length {len(starts)}, expected {len(matrices)}"
        )

    streams = spawn_generators(seed, len(matrices))
    if engine == "vectorized":
        from repro.multisensor.vectorized import simulate_team_vectorized

        coverage, per_sensor_shares, exposure_mean, exposure_counts, \
            transitions = simulate_team_vectorized(
                topology, matrices, horizon, streams, starts
            )
    else:
        coverage, per_sensor_shares, exposure_mean, exposure_counts, \
            transitions = _simulate_team_loop(
                topology, matrices, horizon, streams, starts
            )
    return TeamSimulationResult(
        sensors=len(matrices),
        horizon=float(horizon),
        coverage_shares=coverage,
        per_sensor_shares=per_sensor_shares,
        exposure_mean=exposure_mean,
        exposure_counts=exposure_counts,
        transitions=transitions,
    )


def _simulate_team_loop(
    topology: Topology,
    matrices: Sequence[np.ndarray],
    horizon: float,
    streams: Sequence[np.random.Generator],
    starts: Optional[Sequence[int]],
) -> tuple:
    """Per-event reference engine: Python loops and interval tuples."""
    size = topology.size
    per_sensor_intervals = []
    transitions = np.zeros(len(matrices), dtype=np.int64)
    per_sensor_shares = np.zeros((len(matrices), size))
    for index, (matrix, rng) in enumerate(zip(matrices, streams)):
        start = None if starts is None else int(starts[index])
        intervals, count = _sensor_intervals(
            topology, matrix, horizon, rng, start
        )
        per_sensor_intervals.append(intervals)
        transitions[index] = count
        for poi in range(size):
            per_sensor_shares[index, poi] = _union_length(
                intervals[poi]
            ) / horizon

    coverage = np.zeros(size)
    exposure_mean = np.full(size, np.nan)
    exposure_counts = np.zeros(size, dtype=np.int64)
    for poi in range(size):
        merged = sorted(
            (iv for sensor in per_sensor_intervals for iv in sensor[poi]),
            key=lambda pair: pair[0],
        )
        accumulator = IntervalAccumulator(origin=0.0)
        for lo, hi in merged:
            accumulator.add(lo, hi)
        coverage[poi] = accumulator.covered_time / horizon
        exposure_counts[poi] = accumulator.gap_count
        exposure_mean[poi] = accumulator.mean_gap()

    return coverage, per_sensor_shares, exposure_mean, exposure_counts, \
        transitions


def _simulate_team_task(task):
    """One ``simulate_team_repeatedly`` replication (pickles for the
    process backend)."""
    topology, matrices, horizon, starts, engine, rng = task
    return simulate_team(
        topology, matrices, horizon, seed=rng, starts=starts,
        engine=engine,
    )


def simulate_team_repeatedly(
    topology: Topology,
    matrices: Sequence[np.ndarray],
    horizon: float,
    repetitions: int,
    seed: RandomState = 0,
    starts: Optional[Sequence[int]] = None,
    executor=None,
    engine: Optional[str] = None,
    transport=None,
) -> List[TeamSimulationResult]:
    """Run ``repetitions`` independent team simulations; return them all.

    Replications fan out over the :mod:`repro.exec` execution layer —
    ``executor`` accepts a backend name (``"serial"``/``"thread"``/
    ``"process"``), an ``Executor`` instance, or ``None`` for the ambient
    default (set by ``--jobs`` on the CLI or
    :func:`repro.exec.using_executor`).  Each replication draws from its
    own pre-spawned child stream, so results are bit-identical on every
    backend and at every worker count.

    ``engine`` picks the team simulation implementation (``"vectorized"``
    / ``"loop"``; ``None`` uses the default).  Both give bit-identical
    results — the knob exists for benchmarking and validation.
    ``transport`` selects the process backend's payload transport when
    ``executor`` names a backend (see :mod:`repro.exec.shm`).
    """
    if repetitions < 1:
        raise ValueError(
            f"repetitions must be >= 1, got {repetitions}"
        )
    if engine is None:
        engine = "vectorized"
    # Warm the chord-table cache before the tasks are built: every task
    # (and every pickled copy shipped to process workers) then reuses the
    # one precomputed geometry instead of redoing the O(M^3)
    # intersections.
    topology.chord_table()
    matrices = list(matrices)
    tasks = [
        (topology, matrices, horizon, starts, engine, rng)
        for rng in spawn_generators(seed, repetitions)
    ]
    return resolve_executor(executor, transport=transport).map(
        _simulate_team_task, tasks
    )


def _union_length(intervals: Sequence[tuple]) -> float:
    """Total length of the union of (already generated) intervals."""
    total = 0.0
    current_lo = current_hi = None
    for lo, hi in sorted(intervals, key=lambda pair: pair[0]):
        if current_hi is None:
            current_lo, current_hi = lo, hi
        elif lo <= current_hi:
            current_hi = max(current_hi, hi)
        else:
            total += current_hi - current_lo
            current_lo, current_hi = lo, hi
    if current_hi is not None:
        total += current_hi - current_lo
    return total
