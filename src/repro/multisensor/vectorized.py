"""Vectorized team engine: K pre-sampled sensors, shared interval kernels.

Replays the same stochastic process as the per-event reference engine in
:mod:`repro.multisensor.engine` — and produces **bit-identical**
:class:`~repro.multisensor.engine.TeamSimulationResult` values — but in
whole-path array passes instead of one Python iteration per transition
and one Python tuple per coverage interval:

1. **Per-sensor pre-sampled paths.**  Each sensor's uniforms are drawn in
   vectorized chunks from the *same* spawned stream the loop engine hands
   it, and :func:`repro.simulation.vectorized.presample_horizon_legs`
   walks them through the row CDFs until the shared physical ``horizon``
   is reached, reproducing the loop's sequential ``clock += duration``
   grid bit for bit (chunk carries seed the next ``np.cumsum``).
2. **Leg gathers.**  Every sensor's coverage intervals — dwells, pass-by
   chords against the cached
   :meth:`~repro.topology.model.Topology.chord_table`, destination
   pauses — come from one
   :func:`repro.simulation.vectorized.leg_interval_stream` call per
   sensor and are clipped to ``[0, horizon]`` with the same comparisons
   the loop applies per interval.
3. **Shared interval kernels.**  Per-sensor coverage fractions reduce to
   :func:`repro.simulation.intervals.grouped_union_length` per sensor,
   and the team's K-way union — coverage of a PoI by *at least one*
   sensor, exposure gaps where *no* sensor is in range — reduces to one
   :func:`repro.simulation.intervals.grouped_coverage` pass over the
   sensor-concatenated, PoI-major interval stream.

Bit-exactness mirrors the single-sensor engine's argument
(:mod:`repro.simulation.vectorized`): sequential ``np.cumsum`` clocks,
identical elementwise interval expressions, and stable sorts that feed
each kernel the exact sequences the loop engine's accumulators see
(sensor-major emission order within equal start times).  Over-drawing a
sensor's RNG stream past its stopping step is harmless: the surplus
uniforms are never used and the spawned stream is never consumed again.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.simulation.intervals import grouped_coverage, grouped_union_length
from repro.simulation.vectorized import (
    leg_interval_stream,
    presample_horizon_legs,
)
from repro.topology.model import Topology
from repro.utils.linalg import cumulative_rows


def _poi_major_order(poi: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Indices sorting a stream PoI-major, by start within each PoI.

    Both sorts are stable, so intervals with equal starts keep their
    incoming (sensor-major emission) order — exactly the order Python's
    stable ``sorted(..., key=start)`` produces from the same stream.
    """
    order = np.argsort(starts, kind="stable")
    return order[np.argsort(poi[order], kind="stable")]


def simulate_team_vectorized(
    topology: Topology,
    matrices: Sequence[np.ndarray],
    horizon: float,
    streams: Sequence[np.random.Generator],
    starts: Optional[Sequence[int]],
) -> tuple:
    """Vectorized team engine body; called by ``simulate_team``.

    Inputs are pre-validated; ``streams`` holds one spawned generator per
    sensor, positioned exactly where the loop engine's would be.  Returns
    the raw field tuple ``(coverage, per_sensor_shares, exposure_mean,
    exposure_counts, transitions)`` for the dispatcher to assemble.
    """
    size = topology.size
    count = len(matrices)
    travel_times = topology.travel_times

    per_sensor_shares = np.zeros((count, size))
    transitions = np.zeros(count, dtype=np.int64)
    poi_parts = []
    start_parts = []
    end_parts = []
    for index, (matrix, rng) in enumerate(zip(matrices, streams)):
        # Same stream consumption as the loop engine: an optional uniform
        # start draw, then one uniform per transition.
        if starts is None:
            start = int(rng.integers(size))
        else:
            start = int(starts[index])
        path, durations, grid = presample_horizon_legs(
            cumulative_rows(matrix), travel_times, horizon, rng, start
        )
        origins = path[:-1]
        dests = path[1:]
        clock_starts = np.concatenate(([0.0], grid[:-1]))
        transitions[index] = origins.size

        poi, lo, hi = leg_interval_stream(
            topology, origins, dests, clock_starts, durations
        )
        # Clip to the horizon: same comparisons as the loop engine's
        # per-interval ``lo >= horizon`` drop and ``min(hi, horizon)``.
        keep = lo < horizon
        poi = poi[keep]
        lo = lo[keep]
        hi = np.minimum(hi[keep], horizon)

        order = _poi_major_order(poi, lo)
        per_sensor_shares[index] = grouped_union_length(
            poi[order], lo[order], hi[order], size
        ) / horizon
        poi_parts.append(poi)
        start_parts.append(lo)
        end_parts.append(hi)

    # K-way union on the shared clock: concatenate sensor-major (the
    # order the loop engine builds its per-PoI lists in), then one
    # grouped pass computes union coverage and team exposure gaps.
    poi = np.concatenate(poi_parts)
    lo = np.concatenate(start_parts)
    hi = np.concatenate(end_parts)
    order = _poi_major_order(poi, lo)
    covered, gap_sum, gap_count = grouped_coverage(
        poi[order], lo[order], hi[order], size
    )

    coverage = covered / horizon
    with np.errstate(invalid="ignore", divide="ignore"):
        exposure_mean = np.where(
            gap_count > 0, gap_sum / np.maximum(gap_count, 1), np.nan
        )
    return coverage, per_sensor_shares, exposure_mean, gap_count, \
        transitions
