"""Multi-sensor extension: teams of independently scheduled sensors.

The paper optimizes a single sensor's Markov schedule.  A direct — and
practically important — generalization lets ``K`` sensors patrol the same
topology, each following its own (or a shared) transition matrix,
independently tossing their own coins.  Statelessness is preserved: no
coordination, no communication, each sensor remains a constant-time coin
toss.

What changes is the *accounting*: a PoI is covered when **any** sensor is
in range, so per-PoI coverage is the union of the team's coverage
intervals and exposure segments are the gaps where *no* sensor is in
range.

* :mod:`repro.multisensor.engine` — exact team simulation with two
  bit-identical engines (per-event ``"loop"`` reference and the default
  pre-sampled ``"vectorized"`` path), plus executor fan-out for
  independent replications.
* :mod:`repro.multisensor.vectorized` — the vectorized engine body,
  built on the shared interval kernels of
  :mod:`repro.simulation.intervals`.
* :mod:`repro.multisensor.analytic` — independence approximations for
  team coverage and exposure, with their validity ranges documented and
  tested against the simulator, and internal-consistency cross-checks
  for simulated team results.
"""

from repro.multisensor.engine import (
    TeamSimulationResult,
    simulate_team,
    simulate_team_repeatedly,
)
from repro.multisensor.analytic import (
    check_team_result,
    sensors_needed_for_coverage,
    team_coverage_approximation,
    team_exposure_approximation,
)

__all__ = [
    "simulate_team",
    "simulate_team_repeatedly",
    "TeamSimulationResult",
    "check_team_result",
    "team_coverage_approximation",
    "team_exposure_approximation",
    "sensors_needed_for_coverage",
]
