"""Multi-sensor extension: teams of independently scheduled sensors.

The paper optimizes a single sensor's Markov schedule.  A direct — and
practically important — generalization lets ``K`` sensors patrol the same
topology, each following its own (or a shared) transition matrix,
independently tossing their own coins.  Statelessness is preserved: no
coordination, no communication, each sensor remains a constant-time coin
toss.

What changes is the *accounting*: a PoI is covered when **any** sensor is
in range, so per-PoI coverage is the union of the team's coverage
intervals and exposure segments are the gaps where *no* sensor is in
range.

* :mod:`repro.multisensor.engine` — exact team simulation built on the
  single-sensor engine's interval bookkeeping.
* :mod:`repro.multisensor.analytic` — independence approximations for
  team coverage and exposure, with their validity ranges documented and
  tested against the simulator.
"""

from repro.multisensor.engine import TeamSimulationResult, simulate_team
from repro.multisensor.analytic import (
    sensors_needed_for_coverage,
    team_coverage_approximation,
    team_exposure_approximation,
)

__all__ = [
    "simulate_team",
    "TeamSimulationResult",
    "team_coverage_approximation",
    "team_exposure_approximation",
    "sensors_needed_for_coverage",
]
