"""Independence approximations for team coverage and exposure.

Sensors following independent Markov schedules produce, at each PoI,
independent ON/OFF (in-range/out-of-range) processes.  Two standard
approximations follow, both validated against the exact team simulator in
the test suite:

* **Coverage (exact under independence).**  The long-run fraction of time
  at least one of ``K`` independent stationary processes is ON is

      ``1 - prod_k (1 - c_k)``

  where ``c_k`` is sensor ``k``'s individual coverage fraction.  For
  stationary independent processes this is an identity, so the
  approximation error comes only from residual dependence through the
  shared clock (none) and finite horizons.

* **Exposure (hazard-rate approximation).**  Model sensor ``k``'s OFF
  segments at a PoI as memoryless with mean ``m_k``; while a team gap is
  open every sensor is OFF, and the gap closes when the first sensor
  turns ON, with total hazard ``sum_k 1/m_k``.  The mean team gap is then

      ``1 / sum_k (1/m_k)``

  — the harmonic composition of the individual exposure means.  Real OFF
  segments are not exponential (travel times are bounded), so this is a
  guide, typically within tens of percent; the tests enforce a 2x band.
"""

from __future__ import annotations

import numpy as np


def team_coverage_approximation(per_sensor_shares) -> np.ndarray:
    """Union coverage of independent sensors: ``1 - prod(1 - c_k)``.

    ``per_sensor_shares`` has shape ``(K, M)`` (or ``(M,)`` for one
    sensor): each row is one sensor's per-PoI coverage fractions.
    """
    shares = np.atleast_2d(np.asarray(per_sensor_shares, dtype=float))
    if np.any(shares < 0) or np.any(shares > 1):
        raise ValueError("coverage shares must lie in [0, 1]")
    return 1.0 - np.prod(1.0 - shares, axis=0)


def team_exposure_approximation(per_sensor_exposures) -> np.ndarray:
    """Mean team exposure gap: harmonic composition ``1 / sum(1/m_k)``.

    ``per_sensor_exposures`` has shape ``(K, M)``: each row is one
    sensor's per-PoI mean exposure segment (same time unit in = same
    unit out).  Entries must be positive; ``inf`` is allowed for a
    sensor that never covers a PoI (it simply drops out of the sum).
    """
    exposures = np.atleast_2d(
        np.asarray(per_sensor_exposures, dtype=float)
    )
    if np.any(exposures <= 0):
        raise ValueError("exposure means must be > 0")
    with np.errstate(divide="ignore"):
        rates = np.where(np.isfinite(exposures), 1.0 / exposures, 0.0)
    total = rates.sum(axis=0)
    result = np.full(exposures.shape[1], np.inf)
    positive = total > 0
    result[positive] = 1.0 / total[positive]
    return result


def check_team_result(result, tol: float = 1e-9) -> None:
    """Cross-check a simulated team result for internal consistency.

    Verifies the inequalities every exact union measurement must satisfy,
    independent of which engine produced it:

    * every coverage fraction (union and per-sensor) lies in ``[0, 1]``;
    * the union covers at least the best individual sensor and at most
      the sum of the individuals (Bonferroni bounds);
    * completed exposure gaps fit in the uncovered part of the window:
      ``exposure_mean * exposure_counts <= (1 - coverage) * horizon``;
    * ``exposure_mean`` is ``nan`` exactly where ``exposure_counts`` is
      zero, and per-sensor transition counts are positive.

    Raises ``ValueError`` naming the first violated property.  Used by
    the equivalence tests and re-run on every ``bench_team.py`` cell, so
    a kernel regression cannot slip through as two engines agreeing on a
    wrong answer.
    """
    shares = np.asarray(result.coverage_shares, dtype=float)
    per_sensor = np.atleast_2d(
        np.asarray(result.per_sensor_shares, dtype=float)
    )
    counts = np.asarray(result.exposure_counts)
    means = np.asarray(result.exposure_mean, dtype=float)

    def _fail(message: str) -> None:
        raise ValueError(f"inconsistent team result: {message}")

    if np.any(shares < -tol) or np.any(shares > 1.0 + tol):
        _fail("union coverage shares outside [0, 1]")
    if np.any(per_sensor < -tol) or np.any(per_sensor > 1.0 + tol):
        _fail("per-sensor coverage shares outside [0, 1]")
    if np.any(shares < per_sensor.max(axis=0) - tol):
        _fail("union coverage below the best individual sensor")
    if np.any(shares > per_sensor.sum(axis=0) + tol):
        _fail("union coverage above the sum of individual sensors")
    gap_time = np.where(counts > 0, np.nan_to_num(means) * counts, 0.0)
    uncovered = (1.0 - shares) * result.horizon
    if np.any(gap_time > uncovered + tol * result.horizon):
        _fail("completed exposure gaps exceed the uncovered time")
    if np.any(np.isnan(means) != (counts == 0)):
        _fail("exposure_mean is nan iff exposure_counts is zero")
    if np.any(np.asarray(result.transitions) < 1):
        _fail("every sensor must take at least one transition")


def sensors_needed_for_coverage(
    single_share: float, target_share: float
) -> int:
    """Smallest homogeneous team size reaching ``target_share`` coverage.

    Solves ``1 - (1 - c)^K >= target`` for integer ``K`` — the standard
    sizing question ("how many mules do we need for 99% watch
    coverage?").
    """
    if not 0.0 < single_share < 1.0:
        raise ValueError(
            f"single_share must lie in (0, 1), got {single_share}"
        )
    if not 0.0 < target_share < 1.0:
        raise ValueError(
            f"target_share must lie in (0, 1), got {target_share}"
        )
    if target_share <= single_share:
        return 1
    count = np.log(1.0 - target_share) / np.log(1.0 - single_share)
    return int(np.ceil(count - 1e-12))
