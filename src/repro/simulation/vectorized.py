"""Vectorized simulation engine: pre-sampled paths, array interval math.

Replays the same stochastic process as the per-step reference engine in
:mod:`repro.simulation.engine` — and produces **bit-identical** results —
but in whole-path array passes instead of one Python iteration per
transition:

1. **Pre-sampled path.**  All warmup + measured uniforms come from one
   vectorized ``rng.random(n)`` call (NumPy fills the array from the same
   bitstream as ``n`` scalar draws), then
   :func:`repro.markov.sampling.replay_uniforms` maps them through the
   row CDFs.  Sampled paths therefore match the reference engine's
   one-draw-per-step loop exactly.
2. **Leg gathers.**  Transition durations, schedule-convention coverage
   rows, and chord fractions are gathers against the topology's cached
   :meth:`~repro.topology.model.Topology.chord_table` and timing
   matrices, indexed by the ``(origin, destination)`` pairs of the path.
3. **Interval arithmetic.**  Per-PoI covered time and physical exposure
   gaps are computed by :func:`repro.simulation.intervals.grouped_coverage`
   over the full coverage-interval stream at once; transition-count
   exposure segments reduce to ``np.bincount`` identities over arrival
   and departure steps.

Bit-exactness relies on three properties, each locked in by
``tests/simulation/test_engine_equivalence.py``:

* ``np.cumsum`` is a *sequential* left-to-right sum, so the physical
  clock grid equals the reference engine's running ``clock += duration``
  bit for bit (and chunked column sums continue a sequence exactly by
  seeding the next chunk's cumulative sum with the carry row);
* interval endpoints are built with the same elementwise expressions
  (same operands, same association) the reference engine evaluates per
  step, and a *stable* sort groups them by PoI without reordering each
  PoI's timeline;
* integer-valued statistics (visit counts, occupancy, exposure segment
  sums) are exact in double precision regardless of summation order.
"""

from __future__ import annotations

import numpy as np

from repro.markov.sampling import replay_uniforms
from repro.simulation.intervals import grouped_coverage
from repro.simulation.metrics import SimulationResult
from repro.topology.model import Topology
from repro.utils.linalg import cumulative_rows

#: Rows per chunk of the sequential pass-by column sum.  Sized so a
#: gathered ``chunk x M`` block stays cache-resident between the gather
#: and the reduction; chunking never changes the summation order.
_COLSUM_CHUNK = 16_384


def _sequential_leg_colsum(
    passby: np.ndarray, legs: np.ndarray
) -> np.ndarray:
    """Sum ``passby[origin_t, dest_t]`` rows in step order.

    Equivalent to the reference engine's per-step
    ``covered += passby[origin, destination]``: NumPy reduces a
    C-contiguous array over axis 0 with a plain sequential accumulation
    (pairwise summation only applies along the contiguous axis), and
    each chunk carries the previous partial sum as its row 0, so the
    addition order matches the loop exactly.  Bit-identity is asserted
    by the equivalence suite and re-checked on every benchmark run.
    """
    size = passby.shape[2]
    flat = passby.reshape(-1, size)
    buffer = np.empty((min(_COLSUM_CHUNK, legs.size) + 1, size))
    buffer[0] = 0.0
    for lo in range(0, legs.size, _COLSUM_CHUNK):
        chunk = legs[lo:lo + _COLSUM_CHUNK]
        buffer[1:chunk.size + 1] = flat[chunk]
        buffer[0] = buffer[:chunk.size + 1].sum(axis=0)
    return buffer[0].copy()


def _transition_exposure(
    origins: np.ndarray,
    dests: np.ndarray,
    start_state: int,
    size: int,
) -> tuple:
    """Per-PoI mean exposure segment lengths in transitions.

    Mirrors :class:`~repro.simulation.events.ExposureTracker`: PoI ``i``'s
    segments run from each departure step (state reached after leaving
    ``i``; step 0 for every PoI except the start) to the next arrival at
    ``i``, with self-loops ignored.  Because departures and arrivals
    strictly alternate per PoI — beginning with a (possibly implicit)
    departure — the ``k`` completed segments pair the first ``k`` starts
    with the ``k`` arrivals, so the summed lengths are ``sum(arrival
    steps) - sum(paired start steps)``; the only possibly-unpaired start
    is the latest one.  All quantities are integer-valued, hence exact.
    """
    steps = np.arange(1, origins.size + 1)
    moved = origins != dests
    moved_origins = origins[moved]
    moved_dests = dests[moved]
    moved_steps = steps[moved]

    arrival_count = np.bincount(moved_dests, minlength=size)
    departure_count = np.bincount(moved_origins, minlength=size)
    arrival_sum = np.bincount(
        moved_dests, weights=moved_steps, minlength=size
    )
    departure_sum = np.bincount(
        moved_origins, weights=moved_steps, minlength=size
    )

    implicit_start = (np.arange(size) != start_state).astype(np.int64)
    pending = departure_count + implicit_start - arrival_count
    last_departure = np.full(size, -1, dtype=np.int64)
    np.maximum.at(last_departure, moved_origins, moved_steps)
    # The unpaired start is the latest departure, or the implicit step-0
    # start for a PoI that was never visited at all.
    unpaired = np.where(last_departure >= 0, last_departure, 0)
    segment_sum = arrival_sum - (
        departure_sum - np.where(pending > 0, unpaired, 0)
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = np.where(
            arrival_count > 0,
            segment_sum / np.maximum(arrival_count, 1),
            np.nan,
        )
    return mean, arrival_count


def leg_interval_stream(
    topology: Topology,
    origins: np.ndarray,
    dests: np.ndarray,
    clock_starts: np.ndarray,
    durations: np.ndarray,
) -> tuple:
    """Coverage intervals of a timed leg sequence, in emission order.

    ``origins[t] -> dests[t]`` is the step starting at physical time
    ``clock_starts[t]`` and lasting ``durations[t]``.  Returns
    ``(poi, starts, ends)`` arrays with one entry per coverage interval,
    ordered exactly as the per-step reference engines emit them: for each
    step in sequence, a dwell interval for a self-loop, otherwise the
    leg's pass-by chords (in chord-table order) followed by the
    destination pause.  Endpoints are built with the same elementwise
    expressions the loop engines evaluate per step, so they are
    bit-identical to the scalar bookkeeping.

    Shared by the single-sensor engine and the team engine (which runs it
    once per sensor on the shared wall-clock).
    """
    steps = origins.size
    size = topology.size
    pauses = topology.pause_times
    table = topology.chord_table()
    legs = origins * size + dests

    moved = origins != dests
    per_step = np.where(moved, table.counts[legs] + 1, 1)
    total = int(per_step.sum())
    step_of = np.repeat(np.arange(steps), per_step)
    first_of_step = np.concatenate(([0], np.cumsum(per_step)[:-1]))
    slot = np.arange(total) - first_of_step[step_of]

    stream_moved = moved[step_of]
    is_pause = stream_moved & (slot == per_step[step_of] - 1)
    is_chord = stream_moved & ~is_pause
    is_dwell = ~stream_moved

    poi = np.empty(total, dtype=np.int64)
    interval_starts = np.empty(total)
    interval_ends = np.empty(total)
    travel = durations - pauses[dests]

    t = step_of[is_dwell]
    poi[is_dwell] = origins[t]
    interval_starts[is_dwell] = clock_starts[t]
    interval_ends[is_dwell] = clock_starts[t] + durations[t]

    t = step_of[is_chord]
    chord_at = table.offsets[legs[t]] + slot[is_chord]
    poi[is_chord] = table.poi[chord_at]
    interval_starts[is_chord] = clock_starts[t] + table.t_in[chord_at] \
        * travel[t]
    interval_ends[is_chord] = clock_starts[t] + table.t_out[chord_at] \
        * travel[t]

    t = step_of[is_pause]
    arrival = clock_starts[t] + travel[t]
    poi[is_pause] = dests[t]
    interval_starts[is_pause] = arrival
    interval_ends[is_pause] = arrival + durations[t] - travel[t]

    return poi, interval_starts, interval_ends


def presample_horizon_legs(
    cumulative: np.ndarray,
    travel_times: np.ndarray,
    horizon: float,
    rng: np.random.Generator,
    start: int,
) -> tuple:
    """Pre-sample a state path until the physical clock reaches ``horizon``.

    Vectorized counterpart of the reference loop ``while clock < horizon:
    draw, step, clock += duration``.  Uniforms are drawn in chunks
    (``rng.random(n)`` fills the array from the same bitstream as ``n``
    scalar draws); drawing *past* the stopping step is allowed because the
    surplus uniforms are never used and the per-sensor stream is not
    consumed again afterwards.  The clock grid is built by seeding each
    chunk's ``np.cumsum`` with the previous chunk's carry value, which
    reproduces the loop's sequential ``clock += duration`` additions bit
    for bit.

    Returns ``(path, durations, grid)`` truncated to exactly the ``T``
    transitions the reference loop takes (step ``t`` happens iff the
    clock before it is ``< horizon``): ``path`` holds ``T + 1`` states,
    ``durations[t]`` is step ``t``'s physical length and ``grid[t]`` the
    clock after it (``grid[-1] >= horizon``).
    """
    mean_duration = max(float(travel_times.mean()), 1e-300)
    state = int(start)
    dest_chunks = []
    duration_chunks = []
    grid_chunks = []
    carry = 0.0
    guess = max(64, int(horizon / mean_duration) + 16)
    while True:
        draws = rng.random(guess)
        chunk = replay_uniforms(cumulative, draws, state)
        durations = travel_times[chunk[:-1], chunk[1:]]
        seeded = np.empty(durations.size + 1)
        seeded[0] = carry
        seeded[1:] = durations
        grid = np.cumsum(seeded)[1:]
        dest_chunks.append(chunk[1:])
        duration_chunks.append(durations)
        grid_chunks.append(grid)
        carry = float(grid[-1])
        state = int(chunk[-1])
        if carry >= horizon:
            break
        # Undershot the horizon (e.g. many short self-loops): grow
        # geometrically so pathological paths cost O(log) chunks.
        guess *= 2
    path = np.concatenate(
        ([np.int64(start)], *dest_chunks)
    )
    durations = np.concatenate(duration_chunks)
    grid = np.concatenate(grid_chunks)
    taken = int(np.searchsorted(grid, horizon, side="left")) + 1
    return path[:taken + 1], durations[:taken], grid[:taken]


def simulate_schedule_vectorized(
    topology: Topology,
    matrix: np.ndarray,
    transitions: int,
    rng: np.random.Generator,
    start: int,
    warmup: int,
    record_path: bool,
) -> SimulationResult:
    """Vectorized engine body; called by ``simulate_schedule``.

    Inputs are pre-validated; ``start`` is the state *before* warmup and
    ``rng`` is positioned exactly where the reference engine's would be
    (after any start-state draw).
    """
    size = topology.size
    cumulative = cumulative_rows(matrix)
    draws = rng.random(warmup + transitions)
    walk = replay_uniforms(cumulative, draws, start)
    path = walk[warmup:]
    start_state = int(path[0])
    origins = path[:-1]
    dests = path[1:]

    travel_times = topology.travel_times
    passby = topology.passby
    phi = topology.target_shares

    durations = travel_times[origins, dests]
    # Sequential prefix sums: grid[t] is the reference engine's ``clock``
    # after measured step t+1, bit for bit.
    grid = np.cumsum(durations)
    clock_starts = np.concatenate(([0.0], grid[:-1]))
    clock = float(grid[-1])
    total_schedule = clock  # same sequential sum of the same durations

    legs = origins * size + dests
    covered_schedule = _sequential_leg_colsum(passby, legs)
    visit_counts = np.bincount(dests, minlength=size)
    occupancy = np.bincount(path, minlength=size)

    # ---- coverage-interval stream, in emission (timeline) order ------ #
    poi, interval_starts, interval_ends = leg_interval_stream(
        topology, origins, dests, clock_starts, durations
    )

    # Stable sort: PoI-major, each PoI's intervals kept in timeline order
    # — the exact sequences the reference engine feeds its accumulators.
    order = np.argsort(poi, kind="stable")
    covered, gap_sum, gap_count = grouped_coverage(
        poi[order], interval_starts[order], interval_ends[order], size
    )

    # ---- assemble metrics (same expressions as the reference) -------- #
    coverage_shares = covered_schedule / total_schedule
    physical_shares = covered / clock
    deviations = (covered_schedule - phi * total_schedule) / transitions
    delta_c = float(np.sum(deviations**2))

    exposure_transitions, _ = _transition_exposure(
        origins, dests, start_state, size
    )
    finite = np.nan_to_num(exposure_transitions, nan=0.0)
    e_bar_transitions = float(np.sqrt(np.sum(finite**2)))

    with np.errstate(invalid="ignore", divide="ignore"):
        exposure_physical = np.where(
            gap_count > 0, gap_sum / np.maximum(gap_count, 1), np.nan
        )
    mean_duration = clock / transitions
    normalized = np.nan_to_num(exposure_physical / mean_duration, nan=0.0)
    e_bar_physical = float(np.sqrt(np.sum(normalized**2)))

    return SimulationResult(
        transitions=transitions,
        total_time=clock,
        coverage_shares=coverage_shares,
        physical_coverage_shares=physical_shares,
        delta_c=delta_c,
        exposure_transitions=exposure_transitions,
        e_bar_transitions=e_bar_transitions,
        exposure_physical=exposure_physical,
        e_bar_physical_normalized=e_bar_physical,
        mean_transition_duration=float(mean_duration),
        visit_counts=visit_counts,
        occupancy=occupancy / occupancy.sum(),
        start_state=start_state,
        end_state=int(path[-1]),
        path=path.copy() if record_path else None,
    )
