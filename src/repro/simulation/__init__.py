"""Continuous-time simulation of the Markov-scheduled mobile sensor.

The simulator drives a sensor over a physical
:class:`~repro.topology.model.Topology` using a transition matrix computed
by the optimizer, and measures what the analytic formulas predict: coverage
shares, the coverage deviation ``Delta C``, and per-PoI exposure times in
both the paper's transition-count convention and real physical time
(Section VI-D compares the two).
"""

from repro.simulation.engine import (
    ENGINES,
    SimulationOptions,
    simulate_schedule,
)
from repro.simulation.api import (
    SIMULATOR_REGISTRY,
    SimulatorSpec,
    TeamOptions,
    simulate,
)
from repro.simulation.metrics import SimulationResult
from repro.simulation.events import ExposureTracker, IntervalAccumulator
from repro.simulation.intervals import (
    count_caught,
    gap_lengths,
    grouped_coverage,
    merge_intervals,
)
from repro.simulation.capture import (
    CaptureResult,
    capture_probability_approximation,
    simulate_event_capture,
)

__all__ = [
    "ENGINES",
    "SimulationOptions",
    "SimulationResult",
    "simulate",
    "simulate_schedule",
    "SimulatorSpec",
    "SIMULATOR_REGISTRY",
    "TeamOptions",
    "ExposureTracker",
    "IntervalAccumulator",
    "merge_intervals",
    "gap_lengths",
    "count_caught",
    "grouped_coverage",
    "CaptureResult",
    "simulate_event_capture",
    "capture_probability_approximation",
]
