"""``repro.simulate`` — the scipy-style front door of the simulators.

Every simulation entry point keeps its direct form
(:func:`~repro.simulation.engine.simulate_schedule`,
:func:`~repro.multisensor.engine.simulate_team`, and their
``*_repeatedly`` fan-out drivers), but callers who select the simulator
at runtime — the CLI, the service layer, batch scripts — go through one
façade mirroring :func:`repro.optimize`::

    sim = repro.simulate(topology, matrix, kind="single",
                         transitions=20_000, seed=1)
    team = repro.simulate(topology, matrix, kind="team", sensors=3,
                          horizon=5_000.0, seed=1)

``kind`` picks an entry from :data:`SIMULATOR_REGISTRY`; ``options`` may
be the kind's options dataclass or a plain dict (coerced through
:func:`repro.core.options.coerce_options`, which rejects unknown keys by
name).  The façade only routes — it adds no logic of its own, so
``simulate(..., kind=k)`` is bit-identical to calling the kind's
function directly with the same arguments (tested in
``tests/simulation/test_simulate_api.py``).

``repetitions`` switches to the kind's executor-backed fan-out driver
(``simulate_repeatedly`` / ``simulate_team_repeatedly``); ``execution``
and ``transport`` then select the :mod:`repro.exec` backend and the
process backend's payload transport, exactly as on
``repro.optimize(..., method="multistart")``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Mapping, Optional, Tuple, Type

import numpy as np

from repro.core.options import coerce_options
from repro.simulation.engine import (
    ENGINES,
    SimulationOptions,
    simulate_schedule,
)
from repro.topology.model import Topology


@dataclass(frozen=True)
class TeamOptions:
    """Knobs of the team simulator (``kind="team"``).

    ``engine`` selects the implementation (``"vectorized"`` or the
    per-event ``"loop"`` reference — bit-identical); ``starts``
    optionally fixes each sensor's start PoI (defaults to independent
    uniform draws from each sensor's own stream — see
    :class:`~repro.multisensor.engine.TeamSimulationResult`).
    """

    engine: str = "vectorized"
    starts: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.starts is not None:
            object.__setattr__(
                self, "starts", tuple(int(s) for s in self.starts)
            )


@dataclass(frozen=True)
class SimulatorSpec:
    """Registry entry: a simulator kind's entry points and contract.

    ``func`` is the direct single-run entry point and ``repeat_func``
    resolves the executor-backed fan-out driver used when the façade is
    given ``repetitions`` (a zero-argument callable returning the
    driver, so registering a kind never forces its package to import).
    ``required`` names the façade keyword the kind cannot run without
    (``transitions`` / ``horizon``); ``extra_keywords`` are
    kind-specific keywords the façade accepts (e.g. the team's
    ``sensors``).  ``summary`` is the one-line help text the CLI shows.
    """

    name: str
    func: Callable
    repeat_func: Callable
    options_class: Type
    required: str
    extra_keywords: Tuple[str, ...] = ()
    summary: str = ""


def _single_repeat_driver():
    from repro.experiments.runner import simulate_repeatedly

    return simulate_repeatedly


def _team_repeat_driver():
    from repro.multisensor.engine import simulate_team_repeatedly

    return simulate_team_repeatedly


def _team_func():
    from repro.multisensor.engine import simulate_team

    return simulate_team


def _simulate_team_entry(*args, **kwargs):
    """Late-binding alias of
    :func:`~repro.multisensor.engine.simulate_team` (avoids importing
    :mod:`repro.multisensor` while :mod:`repro.simulation` is still
    initializing)."""
    return _team_func()(*args, **kwargs)


#: Kind name -> spec.  Iteration order is the documentation order.
SIMULATOR_REGISTRY: Dict[str, SimulatorSpec] = {
    "single": SimulatorSpec(
        name="single",
        func=simulate_schedule,
        repeat_func=_single_repeat_driver,
        options_class=SimulationOptions,
        required="transitions",
        summary="one sensor, a fixed number of Markov transitions "
        "(Section VI-D measurement conventions)",
    ),
    "team": SimulatorSpec(
        name="team",
        func=_simulate_team_entry,
        repeat_func=_team_repeat_driver,
        options_class=TeamOptions,
        required="horizon",
        extra_keywords=("sensors",),
        summary="K independent sensors to a shared physical horizon; "
        "coverage is the union of in-range intervals",
    ),
}


def _merge_engine(spec: SimulatorSpec, options, engine: Optional[str]):
    """Coerce ``options`` and fold the ``engine`` keyword into it."""
    if engine is not None and engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    if engine is not None:
        explicit = None
        if isinstance(options, Mapping) and "engine" in options:
            explicit = options["engine"]
        elif isinstance(options, spec.options_class):
            explicit = options.engine
        if explicit is not None and explicit != engine:
            raise ValueError(
                f"conflicting engines: engine={engine!r} but options "
                f"carry engine={explicit!r}"
            )
    coerced = coerce_options(spec.options_class, options,
                             method=spec.name)
    if engine is None:
        return coerced
    if coerced is None:
        return spec.options_class(engine=engine)
    return replace(coerced, engine=engine)


def _team_matrices(matrix, sensors: Optional[int]):
    """Expand the façade's ``matrix`` argument into the per-sensor
    list."""
    if isinstance(matrix, np.ndarray) and matrix.ndim == 3:
        matrices = list(matrix)
    elif isinstance(matrix, (list, tuple)):
        matrices = list(matrix)
    else:
        matrices = [np.asarray(matrix, dtype=float)] * (
            1 if sensors is None else int(sensors)
        )
        return matrices
    if sensors is not None and int(sensors) != len(matrices):
        raise ValueError(
            f"sensors={sensors} conflicts with the {len(matrices)} "
            "matrices passed"
        )
    return matrices


def simulate(
    topology: Topology,
    matrix,
    kind: str = "single",
    transitions: Optional[int] = None,
    horizon: Optional[float] = None,
    seed=None,
    options=None,
    engine: Optional[str] = None,
    repetitions: Optional[int] = None,
    execution=None,
    transport: Optional[str] = None,
    **kwargs,
):
    """Run the simulator kind named ``kind`` on ``topology``.

    Parameters
    ----------
    topology:
        The physical PoI layout.
    matrix:
        Row-stochastic transition matrix.  ``kind="team"`` also accepts
        a sequence of per-sensor matrices (or a 3-D stack); a single
        matrix is replicated across the team (see ``sensors``).
    kind:
        A key of :data:`SIMULATOR_REGISTRY` (``"single"`` or
        ``"team"``).
    transitions:
        ``kind="single"`` only: number of measured Markov transitions.
    horizon:
        ``kind="team"`` only: physical length of the measured window in
        seconds.
    seed:
        RNG seed (see :mod:`repro.utils.rng`).
    options:
        The kind's options dataclass
        (:class:`~repro.simulation.engine.SimulationOptions` /
        :class:`TeamOptions`), or a plain mapping coerced into it
        (unknown keys raise :class:`ValueError` naming them), or
        ``None`` for the kind's defaults.
    engine:
        Shorthand for ``options``' engine field — ``"vectorized"`` or
        ``"loop"`` (bit-identical; the knob exists for benchmarking and
        validation).  Conflicting explicit settings raise.
    repetitions:
        When given, run that many independent replications through the
        kind's executor-backed fan-out driver and return the list of
        results; each replication draws from its own pre-spawned
        stream, so the list is bit-identical on every backend.
    execution:
        Replicated runs only: a :mod:`repro.exec` backend name
        (``"serial"``/``"thread"``/``"process"``), an
        :class:`~repro.exec.executor.Executor` instance, or ``None``
        for the ambient default.
    transport:
        Replicated runs only: the process backend's payload transport
        (``"pickle"``/``"shm"``/``"auto"``), when ``execution`` names a
        backend.
    **kwargs:
        Kind-specific keywords (the team's ``sensors``); anything the
        kind does not declare raises :class:`ValueError`.

    Returns the kind's native result
    (:class:`~repro.simulation.metrics.SimulationResult` /
    :class:`~repro.multisensor.engine.TeamSimulationResult`, or a list
    of them with ``repetitions``), bit-identical to calling the kind's
    function directly.
    """
    try:
        spec = SIMULATOR_REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(SIMULATOR_REGISTRY))
        raise ValueError(
            f"unknown kind {kind!r}; available kinds: {known}"
        ) from None

    unknown = sorted(set(kwargs) - set(spec.extra_keywords))
    if unknown:
        valid = ", ".join(spec.extra_keywords) or "none"
        raise ValueError(
            f"unknown keyword(s) for kind {kind!r}: "
            f"{', '.join(unknown)}; kind-specific keywords: {valid}"
        )
    given = {"transitions": transitions, "horizon": horizon}
    if given[spec.required] is None:
        raise ValueError(f"kind {kind!r} requires {spec.required}=")
    for name, value in given.items():
        if name != spec.required and value is not None:
            raise ValueError(
                f"kind {kind!r} does not accept {name}= "
                f"(it runs to a fixed {spec.required})"
            )
    if repetitions is None and (
        execution is not None or transport is not None
    ):
        raise ValueError(
            "execution/transport apply to replicated runs; pass "
            "repetitions= to fan out"
        )

    no_options = options is None
    opts = _merge_engine(spec, options, engine)

    if kind == "single":
        if repetitions is None:
            call_kwargs = {"seed": seed}
            if opts is not None:
                call_kwargs["options"] = opts
            return simulate_schedule(
                topology, matrix, transitions, **call_kwargs
            )
        if opts is not None and (
            opts.start_state is not None or opts.record_path
        ):
            raise ValueError(
                "start_state/record_path are per-run knobs; replicated "
                "runs draw independent starts and do not record paths"
            )
        driver = spec.repeat_func()
        return driver(
            topology, matrix, transitions, repetitions,
            seed=0 if seed is None else seed,
            # ``options`` given -> its warmup field governs; engine-only
            # or bare calls keep the driver's warmup heuristic.
            warmup=None if no_options else opts.warmup,
            executor=execution,
            engine=None if opts is None else opts.engine,
            transport=transport,
        )

    # kind == "team"
    matrices = _team_matrices(matrix, kwargs.get("sensors"))
    opts = opts or TeamOptions()
    if repetitions is None:
        return spec.func(
            topology, matrices, horizon, seed=seed,
            starts=opts.starts, engine=opts.engine,
        )
    driver = spec.repeat_func()
    return driver(
        topology, matrices, horizon, repetitions,
        seed=0 if seed is None else seed,
        starts=opts.starts,
        executor=execution,
        engine=opts.engine,
        transport=transport,
    )
