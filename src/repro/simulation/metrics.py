"""Result record of a sensor simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class SimulationResult:
    """Measured behavior of one simulated coverage schedule.

    Quantities exist in two accounting conventions, mirroring Section
    VI-D's comparison of simulated against computed values:

    * **Schedule convention** (matches the analytic formulas exactly in
      expectation): coverage accumulates the tensor entries ``T_{jk,i}``;
      exposure counts transitions per Eq. (3)'s assumptions.
    * **Physical convention**: coverage and exposure are measured on the
      continuous timeline with real pass-by chords, the sensor's own
      departure/approach ranges, and variable transition durations — the
      things the analytic simplifications gloss over.

    Attributes
    ----------
    transitions:
        Number of Markov transitions simulated (after warmup).
    total_time:
        Physical duration of the measured portion, seconds.
    coverage_shares:
        ``C_i(N) / T(N)`` under the schedule convention (Eq. 2 analogue).
    physical_coverage_shares:
        Fraction of physical time each PoI was within sensing range.
    delta_c:
        ``sum_i [(C_i(N) - Phi_i T(N)) / N]^2`` — the finite-``N``
        analogue of Eq. (12).
    exposure_transitions:
        Per-PoI mean exposure segment length in transitions (Eq. 3
        analogue); ``nan`` for PoIs never revisited.
    e_bar_transitions:
        ``sqrt(sum_i exposure_transitions_i^2)`` (Eq. 13 analogue).
    exposure_physical:
        Per-PoI mean physical exposure segment, seconds.
    e_bar_physical_normalized:
        ``sqrt(sum_i (exposure_physical_i / mean_transition_duration)^2)``
        — physical exposure expressed in transition-duration units so it
        is directly comparable with the analytic ``E-bar``.
    visit_counts:
        Number of arrivals per PoI (destination visits, self-loops
        included).
    occupancy:
        Empirical state frequencies of the embedded Markov chain over
        all ``transitions + 1`` measured states — the state occupied at
        the start of the measured window (after warmup) is counted along
        with every transition destination.
    start_state / end_state:
        States at the measurement boundaries.
    path:
        The sampled state path (only when trace recording was requested).
    """

    transitions: int
    total_time: float
    coverage_shares: np.ndarray
    physical_coverage_shares: np.ndarray
    delta_c: float
    exposure_transitions: np.ndarray
    e_bar_transitions: float
    exposure_physical: np.ndarray
    e_bar_physical_normalized: float
    mean_transition_duration: float
    visit_counts: np.ndarray
    occupancy: np.ndarray
    start_state: int
    end_state: int
    path: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        """Number of PoIs."""
        return self.coverage_shares.shape[0]

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (
            f"N={self.transitions} T={self.total_time:.1f}s "
            f"dC={self.delta_c:.6g} "
            f"E(trans)={self.e_bar_transitions:.4g} "
            f"E(phys,norm)={self.e_bar_physical_normalized:.4g}"
        )
