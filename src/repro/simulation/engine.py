"""The sensor simulation engine.

Drives a mobile sensor over a physical topology according to a transition
matrix: at each decision point the sensor tosses the constant-time coin
(row ``p_i.``), travels in a straight line at constant speed to the chosen
PoI (possibly covering intermediate PoIs en route), and pauses there.

The engine measures everything Section VI-D reports: coverage shares and
``Delta C`` under the schedule convention, physical coverage shares, and
exposure segments under both the transition-count and physical-time
conventions.

Two interchangeable engines implement the measurement:

* ``"vectorized"`` (the default) — pre-samples the whole state path and
  replays it through array interval arithmetic
  (:mod:`repro.simulation.vectorized`);
* ``"loop"`` — the per-step reference implementation in this module, one
  Python iteration per transition.

Both consume the RNG stream identically and compute every metric with
the same floating-point operations, so for any inputs they return
**bit-identical** :class:`~repro.simulation.metrics.SimulationResult`
values (including the sampled path); the vectorized engine is simply
10-50x faster.  ``tests/simulation/test_engine_equivalence.py`` holds
this guarantee in place.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.simulation.events import ExposureTracker, IntervalAccumulator
from repro.simulation.metrics import SimulationResult
from repro.topology.model import Topology
from repro.utils.linalg import cumulative_rows, is_row_stochastic
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_index, check_square

#: Valid values for :attr:`SimulationOptions.engine`.
ENGINES = ("vectorized", "loop")


@dataclass(frozen=True)
class SimulationOptions:
    """Simulation knobs.

    ``warmup`` transitions are simulated but excluded from measurement so
    the embedded chain forgets its start state.  ``record_path`` stores the
    full state path on the result (memory: 8 bytes/transition).
    ``engine`` selects the implementation — ``"vectorized"`` (default) or
    the per-step ``"loop"`` reference; both produce bit-identical results.
    """

    start_state: Optional[int] = None
    warmup: int = 0
    record_path: bool = False
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )


def simulate_schedule(
    topology: Topology,
    matrix: np.ndarray,
    transitions: Optional[int] = None,
    seed: RandomState = None,
    options: Optional[SimulationOptions] = None,
    *,
    steps: Optional[int] = None,
) -> SimulationResult:
    """Simulate ``transitions`` Markov transitions of the sensor.

    Parameters
    ----------
    topology:
        The physical PoI layout.
    matrix:
        Row-stochastic transition matrix (typically an optimizer output).
    transitions:
        Number of measured transitions (after warmup).
    seed:
        RNG seed (see :mod:`repro.utils.rng`).
    options:
        See :class:`SimulationOptions`.

    Notes
    -----
    The reported ``occupancy`` distribution counts the state occupied at
    the start of the measured window (after warmup) along with the
    destination of every measured transition, i.e. it is the empirical
    distribution of all ``transitions + 1`` states in the measured path.

    ``steps=`` is a deprecated spelling of ``transitions=`` kept for
    drifted callers; it warns and will be removed — use
    ``repro.simulate(topology, matrix, kind="single",
    transitions=...)``.
    """
    if steps is not None:
        warnings.warn(
            "simulate_schedule(steps=...) is deprecated; pass "
            "transitions= — or use the façade: repro.simulate(topology, "
            "matrix, kind='single', transitions=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        if transitions is None:
            transitions = steps
    if transitions is None:
        raise TypeError(
            "simulate_schedule() missing required argument: "
            "'transitions'"
        )
    options = options or SimulationOptions()
    matrix = check_square("matrix", matrix)
    size = topology.size
    if matrix.shape[0] != size:
        raise ValueError(
            f"matrix size {matrix.shape[0]} does not match topology size "
            f"{size}"
        )
    if not is_row_stochastic(matrix):
        raise ValueError("matrix must be row-stochastic")
    if transitions < 1:
        raise ValueError(f"transitions must be >= 1, got {transitions}")

    rng = as_generator(seed)
    if options.start_state is None:
        state = int(rng.integers(size))
    else:
        state = check_index("start_state", options.start_state, size)

    if options.engine == "vectorized":
        from repro.simulation.vectorized import simulate_schedule_vectorized

        return simulate_schedule_vectorized(
            topology,
            matrix,
            transitions,
            rng,
            state,
            options.warmup,
            options.record_path,
        )
    return _simulate_schedule_loop(
        topology,
        matrix,
        transitions,
        rng,
        state,
        options.warmup,
        options.record_path,
    )


def _simulate_schedule_loop(
    topology: Topology,
    matrix: np.ndarray,
    transitions: int,
    rng: np.random.Generator,
    state: int,
    warmup: int,
    record_path: bool,
) -> SimulationResult:
    """Per-step reference engine: one Python iteration per transition."""
    size = topology.size
    cumulative = cumulative_rows(matrix)
    travel_times = topology.travel_times
    passby = topology.passby
    pauses = topology.pause_times
    phi = topology.target_shares

    # Per (origin, destination) leg, the list of (poi, t_in, t_out) chord
    # fractions — the geometry never changes between transitions, so this
    # turns the per-transition work into interval bookkeeping only.
    table = topology.chord_table()
    chords = {
        (origin, destination): table.leg(origin, destination)
        for origin in range(size)
        for destination in range(size)
        if origin != destination
    }

    # -- warmup: advance the chain without measuring ------------------- #
    for _ in range(warmup):
        state = int(
            np.searchsorted(cumulative[state], rng.random(), side="right")
        )
    start_state = state

    # -- measured run --------------------------------------------------- #
    clock = 0.0
    covered_schedule = np.zeros(size)  # sum of T_{jk,i}
    total_schedule = 0.0  # sum of T_jk
    visit_counts = np.zeros(size, dtype=np.int64)
    occupancy = np.zeros(size, dtype=np.int64)
    accumulators = [IntervalAccumulator(origin=0.0) for _ in range(size)]
    exposure = ExposureTracker(size, start_state)
    path = np.empty(transitions + 1, dtype=np.int64) if record_path \
        else None
    if path is not None:
        path[0] = state
    occupancy[state] += 1

    # The sensor begins the measured window already located at
    # ``start_state``; physically it is covering that PoI until it departs,
    # which the first transition's interval bookkeeping handles.
    for step in range(1, transitions + 1):
        origin = state
        destination = int(
            np.searchsorted(cumulative[origin], rng.random(), side="right")
        )

        duration = travel_times[origin, destination]
        covered_schedule += passby[origin, destination]
        total_schedule += duration

        if origin == destination:
            # Pause in place: continuous coverage of the origin.
            accumulators[origin].add(clock, clock + duration)
        else:
            travel = duration - pauses[destination]
            arrival = clock + travel
            for poi, t_in, t_out in chords[origin, destination]:
                accumulators[poi].add(
                    clock + t_in * travel, clock + t_out * travel
                )
            # Pause at the destination: contiguous with its entry chord.
            accumulators[destination].add(arrival, arrival + duration
                                          - travel)

        exposure.record(step, origin, destination)
        clock += duration
        state = destination
        visit_counts[destination] += 1
        occupancy[destination] += 1
        if path is not None:
            path[step] = destination

    # -- assemble metrics ------------------------------------------------ #
    coverage_shares = covered_schedule / total_schedule
    physical_shares = np.array(
        [acc.covered_time for acc in accumulators]
    ) / clock
    deviations = (covered_schedule - phi * total_schedule) / transitions
    delta_c = float(np.sum(deviations**2))

    exposure_transitions = exposure.mean_segments()
    finite = np.nan_to_num(exposure_transitions, nan=0.0)
    e_bar_transitions = float(np.sqrt(np.sum(finite**2)))

    exposure_physical = np.array(
        [acc.mean_gap() for acc in accumulators]
    )
    mean_duration = clock / transitions
    normalized = np.nan_to_num(exposure_physical / mean_duration, nan=0.0)
    e_bar_physical = float(np.sqrt(np.sum(normalized**2)))

    return SimulationResult(
        transitions=transitions,
        total_time=float(clock),
        coverage_shares=coverage_shares,
        physical_coverage_shares=physical_shares,
        delta_c=delta_c,
        exposure_transitions=exposure_transitions,
        e_bar_transitions=e_bar_transitions,
        exposure_physical=exposure_physical,
        e_bar_physical_normalized=e_bar_physical,
        mean_transition_duration=float(mean_duration),
        visit_counts=visit_counts,
        occupancy=occupancy / occupancy.sum(),
        start_state=start_state,
        end_state=state,
        path=path,
    )
