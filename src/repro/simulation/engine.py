"""The sensor simulation engine.

Drives a mobile sensor over a physical topology according to a transition
matrix: at each decision point the sensor tosses the constant-time coin
(row ``p_i.``), travels in a straight line at constant speed to the chosen
PoI (possibly covering intermediate PoIs en route), and pauses there.

The engine measures everything Section VI-D reports: coverage shares and
``Delta C`` under the schedule convention, physical coverage shares, and
exposure segments under both the transition-count and physical-time
conventions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geometry.coverage import chord_through_disc
from repro.geometry.segments import Segment
from repro.simulation.events import ExposureTracker, IntervalAccumulator
from repro.simulation.metrics import SimulationResult
from repro.topology.model import Topology
from repro.utils.linalg import is_row_stochastic
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_index, check_square


@dataclass(frozen=True)
class SimulationOptions:
    """Simulation knobs.

    ``warmup`` transitions are simulated but excluded from measurement so
    the embedded chain forgets its start state.  ``record_path`` stores the
    full state path on the result (memory: 8 bytes/transition).
    """

    start_state: Optional[int] = None
    warmup: int = 0
    record_path: bool = False

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")


def simulate_schedule(
    topology: Topology,
    matrix: np.ndarray,
    transitions: int,
    seed: RandomState = None,
    options: Optional[SimulationOptions] = None,
) -> SimulationResult:
    """Simulate ``transitions`` Markov transitions of the sensor.

    Parameters
    ----------
    topology:
        The physical PoI layout.
    matrix:
        Row-stochastic transition matrix (typically an optimizer output).
    transitions:
        Number of measured transitions (after warmup).
    seed:
        RNG seed (see :mod:`repro.utils.rng`).
    options:
        See :class:`SimulationOptions`.
    """
    options = options or SimulationOptions()
    matrix = check_square("matrix", matrix)
    size = topology.size
    if matrix.shape[0] != size:
        raise ValueError(
            f"matrix size {matrix.shape[0]} does not match topology size "
            f"{size}"
        )
    if not is_row_stochastic(matrix):
        raise ValueError("matrix must be row-stochastic")
    if transitions < 1:
        raise ValueError(f"transitions must be >= 1, got {transitions}")

    rng = as_generator(seed)
    if options.start_state is None:
        state = int(rng.integers(size))
    else:
        state = check_index("start_state", options.start_state, size)

    cumulative = np.cumsum(matrix, axis=1)
    cumulative[:, -1] = 1.0
    positions = topology.positions
    travel_times = topology.travel_times
    passby = topology.passby
    pauses = topology.pause_times
    radius = topology.sensing_radius
    phi = topology.target_shares

    # Precompute, per (origin, destination) leg, the list of
    # (poi, t_in, t_out) chord fractions — the geometry never changes
    # between transitions, so this turns the per-transition work into
    # interval bookkeeping only.
    chords = {}
    for origin_index in range(size):
        for dest_index in range(size):
            if origin_index == dest_index:
                continue
            segment = Segment(
                positions[origin_index], positions[dest_index]
            )
            legs = []
            for poi in range(size):
                chord = chord_through_disc(
                    segment, positions[poi], radius
                )
                if chord is not None:
                    legs.append((poi, chord[0], chord[1]))
            chords[origin_index, dest_index] = legs

    # -- warmup: advance the chain without measuring ------------------- #
    for _ in range(options.warmup):
        state = int(
            np.searchsorted(cumulative[state], rng.random(), side="right")
        )
    start_state = state

    # -- measured run --------------------------------------------------- #
    clock = 0.0
    covered_schedule = np.zeros(size)  # sum of T_{jk,i}
    total_schedule = 0.0  # sum of T_jk
    visit_counts = np.zeros(size, dtype=np.int64)
    occupancy = np.zeros(size, dtype=np.int64)
    accumulators = [IntervalAccumulator(origin=0.0) for _ in range(size)]
    exposure = ExposureTracker(size, start_state)
    path = np.empty(transitions + 1, dtype=np.int64) if options.record_path \
        else None
    if path is not None:
        path[0] = state
    occupancy[state] += 1

    # The sensor begins the measured window already located at
    # ``start_state``; physically it is covering that PoI until it departs,
    # which the first transition's interval bookkeeping handles.
    for step in range(1, transitions + 1):
        origin = state
        destination = int(
            np.searchsorted(cumulative[origin], rng.random(), side="right")
        )

        duration = travel_times[origin, destination]
        covered_schedule += passby[origin, destination]
        total_schedule += duration

        if origin == destination:
            # Pause in place: continuous coverage of the origin.
            accumulators[origin].add(clock, clock + duration)
        else:
            travel = duration - pauses[destination]
            arrival = clock + travel
            for poi, t_in, t_out in chords[origin, destination]:
                accumulators[poi].add(
                    clock + t_in * travel, clock + t_out * travel
                )
            # Pause at the destination: contiguous with its entry chord.
            accumulators[destination].add(arrival, arrival + duration
                                          - travel)

        exposure.record(step, origin, destination)
        clock += duration
        state = destination
        visit_counts[destination] += 1
        occupancy[destination] += 1
        if path is not None:
            path[step] = destination

    # -- assemble metrics ------------------------------------------------ #
    coverage_shares = covered_schedule / total_schedule
    physical_shares = np.array(
        [acc.covered_time for acc in accumulators]
    ) / clock
    deviations = (covered_schedule - phi * total_schedule) / transitions
    delta_c = float(np.sum(deviations**2))

    exposure_transitions = exposure.mean_segments()
    finite = np.nan_to_num(exposure_transitions, nan=0.0)
    e_bar_transitions = float(np.sqrt(np.sum(finite**2)))

    exposure_physical = np.array(
        [acc.mean_gap() for acc in accumulators]
    )
    mean_duration = clock / transitions
    normalized = np.nan_to_num(exposure_physical / mean_duration, nan=0.0)
    e_bar_physical = float(np.sqrt(np.sum(normalized**2)))

    return SimulationResult(
        transitions=transitions,
        total_time=float(clock),
        coverage_shares=coverage_shares,
        physical_coverage_shares=physical_shares,
        delta_c=delta_c,
        exposure_transitions=exposure_transitions,
        e_bar_transitions=e_bar_transitions,
        exposure_physical=exposure_physical,
        e_bar_physical_normalized=e_bar_physical,
        mean_transition_duration=float(mean_duration),
        visit_counts=visit_counts,
        occupancy=occupancy / occupancy.sum(),
        start_state=start_state,
        end_state=state,
        path=path,
    )
