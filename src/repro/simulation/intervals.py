"""Vectorized interval arithmetic over coverage timelines.

These kernels replace per-interval Python objects
(:class:`~repro.simulation.events.IntervalAccumulator` and the list-based
helpers in :mod:`repro.simulation.capture`) with array passes over whole
interval streams at once:

* :func:`merge_intervals` — union of intervals, sorted-by-start semantics;
* :func:`gap_lengths` — uncovered stretches of a merged timeline;
* :func:`count_caught` — how many event windows hit a merged timeline;
* :func:`grouped_coverage` — the simulation engine's hot kernel: covered
  time and exposure-gap statistics for *every* PoI in one pass over the
  concatenated, PoI-major interval stream;
* :func:`grouped_union_length` — union lengths for every group of a
  group-major interval stream (the team engine's K-way per-sensor
  coverage kernel).

``grouped_coverage`` is written to be **bit-identical** to feeding the
same per-PoI interval sequences through ``IntervalAccumulator`` one
``add`` at a time: block boundaries use the same tolerance comparisons,
per-interval covered/gap contributions are the same floating-point
subtractions, and per-PoI totals are accumulated with ``np.cumsum``
(a sequential left-to-right sum, matching the accumulator's ``+=``
order) rather than pairwise reduction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def merge_intervals(
    starts: np.ndarray,
    ends: np.ndarray,
    merge_tol: float = 0.0,
    assume_sorted: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Union of intervals; returns merged ``(starts, ends)`` arrays.

    Intervals are stably sorted by start (unless ``assume_sorted``), then
    an interval opens a new merged block iff its start exceeds the
    running maximum end by more than ``merge_tol`` — the same rule as
    ``IntervalAccumulator.add`` and the capture module's historical
    ``_merge`` (which used ``merge_tol=0``).
    """
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    if starts.size == 0:
        return starts.copy(), ends.copy()
    if not assume_sorted:
        order = np.argsort(starts, kind="stable")
        starts = starts[order]
        ends = ends[order]
    running_end = np.maximum.accumulate(ends)
    new_block = np.empty(starts.size, dtype=bool)
    new_block[0] = True
    new_block[1:] = starts[1:] > running_end[:-1] + merge_tol
    block_first = np.flatnonzero(new_block)
    block_last = np.concatenate((block_first[1:] - 1, [starts.size - 1]))
    return starts[block_first], running_end[block_last]


def gap_lengths(
    merged_starts: np.ndarray,
    merged_ends: np.ndarray,
    horizon: Optional[float] = None,
    origin: float = 0.0,
) -> np.ndarray:
    """Positive uncovered stretches of a merged timeline.

    Includes the leading gap from ``origin`` to the first interval and —
    when ``horizon`` is given — the trailing gap to ``horizon``; interior
    gaps are the spaces between consecutive merged intervals.  Non-
    positive candidates are dropped, matching the list-based helper this
    replaces.
    """
    merged_starts = np.asarray(merged_starts, dtype=float)
    merged_ends = np.asarray(merged_ends, dtype=float)
    edges_lo = np.concatenate(([origin], merged_ends))
    edges_hi = (
        np.concatenate((merged_starts, [horizon]))
        if horizon is not None
        else merged_starts
    )
    gaps = edges_hi - edges_lo[: edges_hi.size]
    return gaps[gaps > 0.0]


def count_caught(
    merged_starts: np.ndarray,
    merged_ends: np.ndarray,
    times: np.ndarray,
    lifetime: float,
    horizon: float,
) -> int:
    """Number of events whose ``[t, t + lifetime]`` window hits coverage.

    An event at ``t`` is caught iff some merged interval intersects its
    detectability window (clipped to the horizon): the first interval
    ending at or after ``t`` must start no later than the window end.
    One vectorized ``searchsorted`` replaces the per-event loop.
    """
    merged_starts = np.asarray(merged_starts, dtype=float)
    merged_ends = np.asarray(merged_ends, dtype=float)
    times = np.asarray(times, dtype=float)
    if merged_starts.size == 0 or times.size == 0:
        return 0
    window_ends = np.minimum(times + lifetime, horizon)
    index = np.searchsorted(merged_ends, times)
    inside = index < merged_starts.size
    starts_at = merged_starts[np.minimum(index, merged_starts.size - 1)]
    return int(np.count_nonzero(inside & (starts_at <= window_ends)))


def grouped_coverage(
    poi: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    size: int,
    merge_tol: float = 1e-9,
    origin: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Covered time and gap statistics for every PoI in one pass.

    Input arrays hold one entry per coverage interval and must be
    **PoI-major**: sorted by ``poi`` with each PoI's intervals kept in
    their emission (timeline) order — exactly the order in which the
    per-step reference engine feeds its ``IntervalAccumulator`` objects.
    Returns ``(covered, gap_sum, gap_count)`` arrays of length ``size``:
    total merged coverage, the summed lengths of completed exposure gaps
    (including the leading gap from ``origin`` when it exceeds
    ``merge_tol``; the stretch after the last interval is *not* counted),
    and the number of such gaps.  A PoI with no intervals reports zero
    coverage and zero gaps, like an accumulator that was never fed.

    Bit-exactness: within each PoI the running covered end is the
    cumulative maximum of interval ends (an exact operation), the
    covered/gap increments are the identical subtractions the
    accumulator performs, and the per-PoI totals are sequential
    ``np.cumsum`` sums over the increments in emission order — so the
    returned arrays equal the accumulator's results bit for bit, not
    merely within tolerance.
    """
    poi = np.asarray(poi, dtype=np.int64)
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    covered = np.zeros(size)
    gap_sum = np.zeros(size)
    gap_count = np.zeros(size, dtype=np.int64)
    bounds = np.searchsorted(poi, np.arange(size + 1))
    for index in range(size):
        lo, hi = int(bounds[index]), int(bounds[index + 1])
        if lo == hi:
            continue
        s = starts[lo:hi]
        e = ends[lo:hi]
        running_end = np.maximum.accumulate(e)
        new_block = s[1:] > running_end[:-1] + merge_tol
        increments = np.empty(hi - lo)
        increments[0] = e[0] - s[0]
        if hi - lo > 1:
            extension = e[1:] - running_end[:-1]
            increments[1:] = np.where(
                new_block,
                e[1:] - s[1:],
                np.where(extension > 0.0, extension, 0.0),
            )
        covered[index] = np.cumsum(increments)[-1]
        leading = s[0] - origin
        gaps = np.empty(hi - lo)
        gaps[0] = leading if leading > merge_tol else 0.0
        if hi - lo > 1:
            gaps[1:] = np.where(new_block, s[1:] - running_end[:-1], 0.0)
        gap_sum[index] = np.cumsum(gaps)[-1]
        gap_count[index] = int(leading > merge_tol) + int(
            np.count_nonzero(new_block)
        )
    return covered, gap_sum, gap_count


def grouped_union_length(
    groups: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    size: int,
) -> np.ndarray:
    """Union length of every group's intervals in one group-major pass.

    Input arrays hold one entry per interval and must be **group-major**:
    sorted by ``groups`` with each group's intervals sorted by start
    (stable, so equal starts keep their incoming order).  Returns a
    length-``size`` array of per-group union lengths; a group with no
    intervals reports zero.

    The semantics — and the floating-point operations — are those of the
    sorted streaming merge historically applied per PoI by the team
    engine: an interval opens a new merged block iff its start strictly
    exceeds the running maximum end (no tolerance), each block
    contributes ``block_max_end - block_start``, and the per-group total
    is the *sequential* sum of the block contributions (``np.cumsum``
    matches a running ``+=`` bit for bit).
    """
    groups = np.asarray(groups, dtype=np.int64)
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    totals = np.zeros(size)
    bounds = np.searchsorted(groups, np.arange(size + 1))
    for index in range(size):
        lo, hi = int(bounds[index]), int(bounds[index + 1])
        if lo == hi:
            continue
        s = starts[lo:hi]
        e = ends[lo:hi]
        # Within a block every end exceeds the previous blocks' maximum
        # (its start does, and ends dominate starts), so the global
        # running maximum equals the block-local one.
        running_end = np.maximum.accumulate(e)
        new_block = np.empty(hi - lo, dtype=bool)
        new_block[0] = True
        new_block[1:] = s[1:] > running_end[:-1]
        block_first = np.flatnonzero(new_block)
        block_last = np.concatenate((block_first[1:] - 1, [hi - lo - 1]))
        totals[index] = np.cumsum(
            running_end[block_last] - s[block_first]
        )[-1]
    return totals
