"""Event-capture metric: how many incidents does the schedule catch?

Section III motivates coverage with event detection ("detect any
interesting event happening at i"), and the exposure-time metric exists
precisely because *incidents that occur while the sensor is away go
undetected until it returns*.  This module closes the loop: it plants
Poisson incidents at the PoIs, gives each a detectability lifetime, and
measures the fraction the schedule actually catches.

Two routes are provided:

* :func:`simulate_event_capture` — exact measurement against the physical
  coverage timeline of a simulated schedule (an incident at PoI ``i`` is
  caught iff ``i`` is covered at some point within ``lifetime`` of its
  occurrence).
* :func:`capture_probability_approximation` — the stationary
  alternating-process estimate

      ``P(caught) ~= c + (1 - c) * (1 - exp(-lifetime / m))``

  where ``c`` is the PoI's coverage fraction and ``m`` its mean exposure
  gap (memoryless-gap approximation; tested against the simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.multisensor.engine import _sensor_intervals
from repro.simulation.intervals import (
    count_caught,
    gap_lengths,
    merge_intervals,
)
from repro.topology.model import Topology
from repro.utils.linalg import is_row_stochastic
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import check_square


@dataclass(frozen=True)
class CaptureResult:
    """Measured event capture of one simulated schedule.

    Attributes
    ----------
    capture_fraction:
        Per-PoI fraction of planted incidents that were detected.
    event_counts:
        Per-PoI number of incidents planted.
    coverage_shares:
        Per-PoI physical coverage fraction of the run (for the
        approximation comparison).
    mean_gaps:
        Per-PoI mean uncovered-interval length, seconds.
    horizon:
        Simulated physical time, seconds.
    """

    capture_fraction: np.ndarray
    event_counts: np.ndarray
    coverage_shares: np.ndarray
    mean_gaps: np.ndarray
    horizon: float

    @property
    def overall_capture(self) -> float:
        """Event-weighted overall capture fraction."""
        total = self.event_counts.sum()
        if total == 0:
            return float("nan")
        caught = (self.capture_fraction * self.event_counts)
        return float(np.nansum(caught) / total)


def simulate_event_capture(
    topology: Topology,
    matrix: np.ndarray,
    horizon: float,
    rates: Sequence[float],
    lifetime: float,
    seed: RandomState = None,
) -> CaptureResult:
    """Plant Poisson incidents and measure the schedule's capture rate.

    Parameters
    ----------
    topology / matrix:
        The physical layout and the schedule driving the sensor.
    horizon:
        Physical simulation length, seconds.
    rates:
        Per-PoI incident rates (events/second); a scalar broadcasts.
    lifetime:
        How long an incident remains detectable after it occurs,
        seconds.  An incident is caught iff its PoI is covered at some
        instant in ``[t, t + lifetime]``.
    seed:
        Master seed (independent streams for the schedule and events).
    """
    matrix = check_square("matrix", matrix)
    if matrix.shape[0] != topology.size:
        raise ValueError(
            f"matrix size {matrix.shape[0]} does not match topology "
            f"size {topology.size}"
        )
    if not is_row_stochastic(matrix):
        raise ValueError("matrix must be row-stochastic")
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    if lifetime < 0:
        raise ValueError(f"lifetime must be >= 0, got {lifetime}")
    size = topology.size
    rates = np.broadcast_to(
        np.asarray(rates, dtype=float), (size,)
    ).copy()
    if np.any(rates < 0):
        raise ValueError("rates must be >= 0")

    schedule_rng, event_rng = spawn_generators(seed, 2)
    intervals, _ = _sensor_intervals(
        topology, matrix, horizon, schedule_rng, start=None
    )

    capture = np.full(size, np.nan)
    counts = np.zeros(size, dtype=np.int64)
    coverage = np.zeros(size)
    gaps = np.full(size, np.nan)
    for poi in range(size):
        raw = np.asarray(intervals[poi], dtype=float).reshape(-1, 2)
        merged_starts, merged_ends = merge_intervals(raw[:, 0], raw[:, 1])
        # Sequential cumsum keeps the sum order of the historical
        # one-interval-at-a-time accumulation.
        covered = (
            float(np.cumsum(merged_ends - merged_starts)[-1])
            if merged_starts.size
            else 0.0
        )
        coverage[poi] = covered / horizon
        uncovered = gap_lengths(merged_starts, merged_ends, horizon=horizon)
        if uncovered.size:
            gaps[poi] = float(np.mean(uncovered))
        if rates[poi] == 0:
            continue
        count = event_rng.poisson(rates[poi] * horizon)
        counts[poi] = count
        if count == 0:
            continue
        times = np.sort(event_rng.uniform(0.0, horizon, size=count))
        caught = count_caught(
            merged_starts, merged_ends, times, lifetime, horizon
        )
        capture[poi] = caught / count
    return CaptureResult(
        capture_fraction=capture,
        event_counts=counts,
        coverage_shares=coverage,
        mean_gaps=gaps,
        horizon=float(horizon),
    )


def capture_probability_approximation(
    coverage_shares, mean_gaps, lifetime: float
) -> np.ndarray:
    """Stationary estimate ``c + (1 - c)(1 - exp(-lifetime / m))``.

    ``mean_gaps`` may contain ``nan``/``inf`` for PoIs that are never
    uncovered (capture probability 1) or never covered (probability of
    the pure-arrival term only).
    """
    if lifetime < 0:
        raise ValueError(f"lifetime must be >= 0, got {lifetime}")
    c = np.asarray(coverage_shares, dtype=float)
    m = np.asarray(mean_gaps, dtype=float)
    if np.any((c < 0) | (c > 1)):
        raise ValueError("coverage shares must lie in [0, 1]")
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        residual = np.where(
            np.isfinite(m) & (m > 0), 1.0 - np.exp(-lifetime / m), 0.0
        )
    # A PoI that is covered all the time has no gaps: probability 1.
    return np.where(np.isnan(m) & (c > 0.999999), 1.0,
                    c + (1.0 - c) * residual)


# List-of-tuples compatibility shims over the array kernels in
# :mod:`repro.simulation.intervals`; kept because tests exercise the
# interval logic through these historical signatures.


def _merge(intervals) -> list:
    raw = np.asarray(list(intervals), dtype=float).reshape(-1, 2)
    starts, ends = merge_intervals(raw[:, 0], raw[:, 1])
    return list(zip(starts.tolist(), ends.tolist()))


def _gap_lengths(merged, horizon: float) -> list:
    raw = np.asarray(list(merged), dtype=float).reshape(-1, 2)
    return gap_lengths(raw[:, 0], raw[:, 1], horizon=horizon).tolist()


def _count_caught(merged, times, lifetime: float, horizon: float) -> int:
    """Number of events whose ``[t, t+lifetime]`` window hits coverage."""
    raw = np.asarray(list(merged), dtype=float).reshape(-1, 2)
    return count_caught(raw[:, 0], raw[:, 1], times, lifetime, horizon)
