"""Event bookkeeping for the sensor simulation.

Two small accumulators:

* :class:`IntervalAccumulator` — merges a stream of non-decreasing
  coverage intervals for one PoI and records the *gaps* between merged
  intervals (the physical exposure segments) plus the total covered time.
* :class:`ExposureTracker` — measures exposure in the paper's
  transition-count convention: a segment starts one transition after the
  sensor leaves the PoI and ends on the next arrival; pass-bys do not end
  a segment (Section III-A's simplifying assumptions).
"""

from __future__ import annotations

import numpy as np


class IntervalAccumulator:
    """Streaming union of coverage intervals with gap statistics.

    Intervals must arrive with non-decreasing start times (the simulation
    emits them in timeline order).  Adjacent or overlapping intervals are
    merged; each positive gap between merged intervals is recorded as one
    physical exposure segment.
    """

    __slots__ = ("_cover_end", "_cover_start", "_covered", "_gaps_sum",
                 "_gaps_count", "_last_start", "origin")

    def __init__(self, origin: float = 0.0) -> None:
        self.origin = float(origin)
        self._cover_start = None
        self._cover_end = None
        self._covered = 0.0
        self._gaps_sum = 0.0
        self._gaps_count = 0
        self._last_start = -np.inf

    def add(self, start: float, end: float, merge_tol: float = 1e-9) -> None:
        """Add a coverage interval ``[start, end]``."""
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        if start < self._last_start - merge_tol:
            raise ValueError(
                "intervals must arrive in non-decreasing start order: "
                f"got start {start} after {self._last_start}"
            )
        self._last_start = max(self._last_start, start)
        if self._cover_end is None:
            # First coverage; the stretch from the origin is a gap only if
            # positive, and is counted as a segment (the PoI was exposed
            # from the start of the run).
            gap = start - self.origin
            if gap > merge_tol:
                self._gaps_sum += gap
                self._gaps_count += 1
            self._cover_start, self._cover_end = start, end
            self._covered += end - start
            return
        if start <= self._cover_end + merge_tol:
            # Overlaps or touches the current covered stretch: extend.
            if end > self._cover_end:
                self._covered += end - self._cover_end
                self._cover_end = end
            return
        # Disjoint: the space between is one exposure segment.
        self._gaps_sum += start - self._cover_end
        self._gaps_count += 1
        self._cover_start, self._cover_end = start, end
        self._covered += end - start

    @property
    def covered_time(self) -> float:
        """Total covered (merged) time so far."""
        return self._covered

    @property
    def gap_count(self) -> int:
        """Number of completed exposure segments."""
        return self._gaps_count

    @property
    def gap_total(self) -> float:
        """Summed length of completed exposure segments."""
        return self._gaps_sum

    def mean_gap(self) -> float:
        """Average exposure segment length; ``nan`` when none completed."""
        if self._gaps_count == 0:
            return float("nan")
        return self._gaps_sum / self._gaps_count


class ExposureTracker:
    """Transition-count exposure segments for every PoI.

    Mirrors the analytic convention behind Eq. (3): the segment for PoI
    ``i`` is the number of transitions from the state reached immediately
    after leaving ``i`` until the next arrival at ``i``; intermediate
    pass-bys are ignored.
    """

    __slots__ = ("_away_since", "_count", "_size", "_sum")

    def __init__(self, size: int, start_state: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if not 0 <= start_state < size:
            raise ValueError(
                f"start_state must lie in [0, {size}), got {start_state}"
            )
        self._size = size
        # _away_since[i] = step index at which the post-departure state was
        # entered, or -1 while the sensor is at i (or i was never left).
        self._away_since = np.full(size, -1, dtype=np.int64)
        self._sum = np.zeros(size)
        self._count = np.zeros(size, dtype=np.int64)
        # Every PoI other than the start is "away" from step 0.
        for i in range(size):
            if i != start_state:
                self._away_since[i] = 0

    def record(self, step: int, origin: int, destination: int) -> None:
        """Record the transition ``origin -> destination`` at ``step``.

        ``step`` is the index of the *arrival* state in the path (1-based
        for the first transition).
        """
        if origin == destination:
            return
        # Arrival ends the destination's exposure segment.
        if self._away_since[destination] >= 0:
            length = step - self._away_since[destination]
            if length > 0:
                self._sum[destination] += length
                self._count[destination] += 1
            self._away_since[destination] = -1
        # Departure starts the origin's segment at the arrival state.
        self._away_since[origin] = step

    def mean_segments(self) -> np.ndarray:
        """Per-PoI mean segment length in transitions (``nan`` if none)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self._count > 0, self._sum / np.maximum(self._count, 1),
                np.nan,
            )

    @property
    def counts(self) -> np.ndarray:
        """Per-PoI number of completed segments (copy)."""
        return self._count.copy()
