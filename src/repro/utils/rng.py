"""Random-number-generator plumbing.

All stochastic components in the library accept a ``seed`` argument that can
be ``None``, an integer, or a :class:`numpy.random.Generator`.  This module
centralizes the conversion so every experiment is reproducible end to end and
independent runs can be given statistically independent streams.
"""

from __future__ import annotations

import json
from typing import Sequence, Union

import numpy as np

#: Anything acceptable as a seed throughout the library.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives a fresh nondeterministic generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` gives a deterministic one; an
    existing generator is passed through unchanged (shared state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: RandomState, count: int) -> list:
    """Return ``count`` statistically independent generators.

    Independent runs of a randomized algorithm (e.g. the 200 runs behind
    Table III) must not share a stream, otherwise their results are
    correlated.  ``SeedSequence.spawn`` provides the independence guarantee.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator so the caller's stream
        # is perturbed only once regardless of ``count``.
        sequence = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(seed: RandomState, index: int) -> int:
    """Return a deterministic integer seed derived from ``(seed, index)``.

    Useful when a sub-component requires a plain integer (e.g. to log it in
    a result record) rather than a generator.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "derive_seed requires a reproducible seed (None, int, or "
            "SeedSequence), not a live Generator"
        )
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    children: Sequence[np.random.SeedSequence] = root.spawn(index + 1)
    state = children[index].generate_state(1, dtype=np.uint64)
    return int(state[0] % (2**63))


def generator_state(generator: np.random.Generator) -> dict:
    """JSON-plain snapshot of a generator's exact stream position.

    The returned dict (bit-generator name plus its ``.state`` payload,
    which numpy exposes as plain ints and lists) round-trips through
    :func:`generator_from_state` to a generator that continues the
    stream bit-identically — the property the service's mid-run job
    checkpoints rely on (:mod:`repro.service`).
    """
    state = generator.bit_generator.state

    def _plain(value):
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, np.integer):
            return int(value)
        raise TypeError(f"non-JSON value in RNG state: {value!r}")

    return json.loads(json.dumps(state, default=_plain))


def generator_from_state(state: dict) -> np.random.Generator:
    """Rebuild a generator from a :func:`generator_state` snapshot."""
    name = state.get("bit_generator")
    try:
        bit_generator_class = getattr(np.random, name)
    except (TypeError, AttributeError):
        raise ValueError(
            f"unknown bit generator {name!r} in RNG snapshot"
        ) from None
    bit_generator = bit_generator_class()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def random_simplex_row(
    size: int, rng: np.random.Generator, floor: float = 0.0
) -> np.ndarray:
    """Sample one probability row of length ``size``.

    Uses a flat Dirichlet (uniform on the simplex).  ``floor`` optionally
    bounds every entry away from zero, which keeps randomly initialized
    transition matrices ergodic.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if not 0.0 <= floor < 1.0 / size:
        raise ValueError(
            f"floor must lie in [0, 1/size)={1.0 / size:.4g}, got {floor}"
        )
    row = rng.dirichlet(np.ones(size))
    if floor > 0.0:
        row = floor + (1.0 - size * floor) * row
    return row


def paper_random_row(size: int, rng: np.random.Generator) -> np.ndarray:
    """Sample a probability row using the paper's V2 recipe.

    Section V, variant V2: each entry except the last is set to
    ``rand * rem / M`` where ``rand ~ U(0, 1)`` and ``rem`` is the
    probability remaining in the row; the last entry absorbs the remainder.
    The construction guarantees strictly positive entries, hence ergodicity
    of the resulting chain.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    row = np.empty(size)
    remaining = 1.0
    for column in range(size - 1):
        row[column] = rng.uniform() * remaining / size
        remaining -= row[column]
    row[size - 1] = remaining
    return row
