"""Lightweight performance counters for the linear-algebra hot path.

The optimizer's cost is dominated by dense ``O(M^3)`` work: factorizing
``(I - P + W)`` and solving the stationary system for every
:class:`~repro.core.state.ChainState`, plus the stacked solves of the
batched line search.  This module counts that work so regressions in the
"factorizations per step" budget are measurable rather than anecdotal
(see ``docs/performance.md`` for the counter semantics).

Counting is scope-based: any code can open a :func:`perf_scope`, and all
counters incremented while the scope is active — including from worker
threads — accumulate into it.  Scopes nest; increments go to every
active scope.  Worker *processes* have their own module state, so
process-parallel runs report per-run counters via the
:class:`OptimizerPerf` attached to each
:class:`~repro.core.result.OptimizationResult` (which travels back
through pickling) rather than via an ambient scope.

With no active scope every hook is a cheap no-op.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, fields


@dataclass(eq=False)
class PerfCounters:
    """Tallies of the expensive operations.

    ``factorizations`` counts *scalar* dense decompositions (one LU or
    linear solve of a single ``M x M`` system).  Batched line-search
    work is tracked separately: ``batch_calls`` stacked evaluations
    covering ``batch_matrices`` matrices in total (each batched matrix
    costs one stacked solve plus one stacked inversion, but never a
    per-matrix Python round trip).

    ``eq=False``: scope bookkeeping removes a finished scope's counters
    from the active list by identity; value equality would let two
    concurrent scopes with equal tallies remove each other's entry.
    """

    factorizations: int = 0
    state_builds: int = 0
    states_reused: int = 0
    batch_calls: int = 0
    batch_matrices: int = 0
    executor_tasks: int = 0
    executor_task_seconds: float = 0.0
    sparse_factorizations: int = 0
    incremental_updates: int = 0
    incremental_refactorizations: int = 0
    dispatch_bytes: int = 0
    dispatch_seconds: float = 0.0

    def add(self, name: str, amount=1) -> None:
        """Increment counter ``name`` by ``amount``."""
        setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> "PerfCounters":
        """An independent copy of the current tallies."""
        return PerfCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )


_lock = threading.Lock()
_active = []  # type: list


def count(name: str, amount=1) -> None:
    """Add ``amount`` to counter ``name`` in every active scope."""
    if not _active:
        return
    with _lock:
        for counters in _active:
            counters.add(name, amount)


@contextmanager
def perf_scope():
    """Collect counters for the duration of the ``with`` block.

    Yields the live :class:`PerfCounters`; read it inside or after the
    block.  Scopes nest: increments are applied to every active scope,
    so an outer experiment scope sees the sum over inner optimizer
    scopes.
    """
    counters = PerfCounters()
    with _lock:
        _active.append(counters)
    try:
        yield counters
    finally:
        with _lock:
            _active.remove(counters)


@dataclass
class OptimizerPerf:
    """Per-run hot-path statistics attached to an OptimizationResult.

    ``accept_factorizations`` counts the *scalar* factorizations spent
    constructing accepted candidates' states — zero when the line
    search's winning probe is handed back instead of rebuilt.  The
    derived :meth:`factorizations_per_accepted_step` adds one for the
    batched line-search evaluation that produced each accepted
    candidate, so the historical rebuild-from-scratch behavior scores 3
    (batch + stationary solve + fundamental LU) and the sharing path
    scores 1.

    ``dispatch_bytes`` / ``dispatch_seconds`` account serialization of
    task payloads on the submitting side of the process backend (see
    :class:`repro.exec.executor.TaskTimings`).  They are zero for runs
    inside a worker — dispatch is paid by the parent, so they show up
    in ambient :func:`perf_scope` counters around a fan-out (and in the
    dispatch benchmark's output), not in the per-run perf attached to
    each result.
    """

    factorizations: int = 0
    state_builds: int = 0
    states_reused: int = 0
    batch_calls: int = 0
    batch_matrices: int = 0
    accepted_steps: int = 0
    accept_factorizations: int = 0
    seconds: float = 0.0
    dispatch_bytes: int = 0
    dispatch_seconds: float = 0.0

    @classmethod
    def from_counters(cls, counters: PerfCounters, **extra):
        """Build from a scope's counters plus optimizer-level fields."""
        return cls(
            factorizations=counters.factorizations,
            state_builds=counters.state_builds,
            states_reused=counters.states_reused,
            batch_calls=counters.batch_calls,
            batch_matrices=counters.batch_matrices,
            dispatch_bytes=counters.dispatch_bytes,
            dispatch_seconds=counters.dispatch_seconds,
            **extra,
        )

    def factorizations_per_accepted_step(self) -> float:
        """Average dense factorizations charged per accepted step."""
        if self.accepted_steps == 0:
            return 0.0
        return self.accept_factorizations / self.accepted_steps + 1.0
