"""Argument-validation helpers shared across the library.

Raising precise errors at the public API boundary keeps the numerical core
free of defensive checks and makes misuse diagnosable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Default tolerance for stochasticity / distribution checks.
DEFAULT_ATOL = 1e-9


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative if not strict)."""
    value = float(value)
    if strict and not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that a scalar lies in the closed unit interval."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_square(name: str, matrix: np.ndarray) -> np.ndarray:
    """Validate that ``matrix`` is a finite square 2-D float array."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be square, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise ValueError(f"{name} contains non-finite entries")
    return matrix


def check_matrix_shape(
    name: str, matrix: np.ndarray, shape: tuple
) -> np.ndarray:
    """Validate an exact array shape."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != shape:
        raise ValueError(
            f"{name} must have shape {shape}, got {matrix.shape}"
        )
    return matrix


def check_distribution(
    name: str,
    vector: np.ndarray,
    size: Optional[int] = None,
    atol: float = DEFAULT_ATOL,
) -> np.ndarray:
    """Validate that ``vector`` is a probability distribution.

    Entries must be non-negative and sum to one within ``atol``.  Returns
    the vector as a float array (not renormalized; an almost-valid input is
    accepted as-is so callers can decide whether to normalize).
    """
    vector = np.asarray(vector, dtype=float)
    if vector.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {vector.shape}")
    if size is not None and vector.shape[0] != size:
        raise ValueError(
            f"{name} must have length {size}, got {vector.shape[0]}"
        )
    if not np.all(np.isfinite(vector)):
        raise ValueError(f"{name} contains non-finite entries")
    if np.any(vector < -atol):
        raise ValueError(f"{name} has negative entries: min={vector.min()}")
    total = float(vector.sum())
    if abs(total - 1.0) > max(atol, 1e-12 * vector.shape[0]):
        raise ValueError(f"{name} must sum to 1, got {total}")
    return vector


def check_index(name: str, index: int, size: int) -> int:
    """Validate an integer index into a collection of length ``size``."""
    index = int(index)
    if not 0 <= index < size:
        raise ValueError(f"{name} must lie in [0, {size}), got {index}")
    return index
