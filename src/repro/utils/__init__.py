"""Shared utilities: RNG plumbing, argument validation, numeric helpers."""

from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import (
    check_distribution,
    check_matrix_shape,
    check_positive,
    check_probability,
    check_square,
)
from repro.utils.linalg import (
    is_row_stochastic,
    project_row_sum_zero,
    row_normalize,
    relative_error,
)

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "check_distribution",
    "check_matrix_shape",
    "check_positive",
    "check_probability",
    "check_square",
    "is_row_stochastic",
    "project_row_sum_zero",
    "row_normalize",
    "relative_error",
]
