"""Shared numerical helpers on stochastic matrices and simplex geometry."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_square


def cumulative_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise cumulative distribution of a row-stochastic matrix.

    Returns a fresh array whose rows are the running sums of ``matrix``'s
    rows with the last column forced to exactly ``1.0`` — rows summing to
    ``1 - 1e-16`` would otherwise let an inverse-CDF draw of ``u`` very
    close to 1 fall off the end.  Every inverse-CDF sampler in the
    library (``markov.sampling``, the simulation engines, the team
    simulator) goes through this helper so they agree bit for bit.
    """
    cumulative = np.cumsum(np.asarray(matrix, dtype=float), axis=1)
    cumulative[:, -1] = 1.0
    return cumulative


def is_row_stochastic(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return whether every row of ``matrix`` is a probability distribution."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if not np.all(np.isfinite(matrix)):
        return False
    if np.any(matrix < -atol):
        return False
    return bool(np.allclose(matrix.sum(axis=1), 1.0, atol=atol))


def row_normalize(matrix: np.ndarray) -> np.ndarray:
    """Rescale each row of a non-negative matrix to sum to one."""
    matrix = np.asarray(matrix, dtype=float)
    if np.any(matrix < 0):
        raise ValueError("row_normalize requires non-negative entries")
    sums = matrix.sum(axis=1, keepdims=True)
    if np.any(sums <= 0):
        raise ValueError("row_normalize requires every row sum to be > 0")
    return matrix / sums


def project_row_sum_zero(
    matrix: np.ndarray, support: np.ndarray = None
) -> np.ndarray:
    """Orthogonally project onto the subspace of row-sum-zero matrices.

    This is Eq. (11) of the paper: ``Pi_ij = U_ij - mean_k(U_ik)``.  Updating
    a row-stochastic matrix along a row-sum-zero direction preserves its row
    sums exactly, which is how the descent iteration stays on the simplex.

    With a boolean ``support`` mask (sparse topologies restrict feasible
    transitions to an adjacency pattern), the projection is onto
    row-sum-zero matrices *vanishing off the support*: the row mean is
    taken over supported entries only and unsupported entries are zeroed,
    so descent directions never move probability onto infeasible legs.
    """
    matrix = check_square("matrix", matrix)
    if support is None:
        return matrix - matrix.mean(axis=1, keepdims=True)
    support = np.asarray(support, dtype=bool)
    if support.shape != matrix.shape:
        raise ValueError(
            f"support shape {support.shape} != matrix shape {matrix.shape}"
        )
    counts = support.sum(axis=1, keepdims=True)
    if np.any(counts == 0):
        raise ValueError("support has an all-empty row")
    means = (matrix * support).sum(axis=1, keepdims=True) / counts
    return np.where(support, matrix - means, 0.0)


def relative_error(actual: np.ndarray, expected: np.ndarray) -> float:
    """Return ``||actual - expected|| / max(1, ||expected||)`` (Frobenius)."""
    actual = np.asarray(actual, dtype=float)
    expected = np.asarray(expected, dtype=float)
    scale = max(1.0, float(np.linalg.norm(expected)))
    return float(np.linalg.norm(actual - expected)) / scale


def clip_to_open_interval(
    matrix: np.ndarray, margin: float = 1e-12
) -> np.ndarray:
    """Clip entries into ``(0, 1)`` by ``margin`` without renormalizing.

    Used only as a numerical guard before evaluating logarithmic barrier
    terms; the optimizer itself maintains feasibility through its step-size
    bounds.
    """
    if not 0.0 < margin < 0.5:
        raise ValueError(f"margin must lie in (0, 0.5), got {margin}")
    return np.clip(np.asarray(matrix, dtype=float), margin, 1.0 - margin)


def spectral_gap(matrix: np.ndarray) -> float:
    """Return ``1 - |lambda_2|`` for a stochastic matrix.

    The spectral gap controls the chain's mixing speed; it is exposed for
    diagnostics and is used by tests to pick well-conditioned examples.
    """
    matrix = check_square("matrix", matrix)
    eigenvalues = np.linalg.eigvals(matrix)
    moduli = np.sort(np.abs(eigenvalues))[::-1]
    if moduli.size < 2:
        return 1.0
    if abs(moduli[0] - 1.0) > 1e-6:
        raise ValueError(
            "matrix does not look stochastic: leading eigenvalue "
            f"modulus {moduli[0]}"
        )
    return float(1.0 - moduli[1])


def max_feasible_step(
    matrix: np.ndarray,
    direction: np.ndarray,
    lower: float = 0.0,
    upper: float = 1.0,
) -> float:
    """Largest ``t >= 0`` with ``lower <= matrix + t*direction <= upper``.

    Returns ``inf`` when the direction never violates the bounds.  This
    implements the feasibility bounding used by the adaptive line search
    (Section V, variant V3) to keep every ``p_ij`` inside ``[0, 1]``.
    """
    matrix = np.asarray(matrix, dtype=float)
    direction = np.asarray(direction, dtype=float)
    if matrix.shape != direction.shape:
        raise ValueError(
            f"shape mismatch: {matrix.shape} vs {direction.shape}"
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        # Entries moving down hit ``lower``; entries moving up hit ``upper``.
        to_lower = np.where(direction < 0, (lower - matrix) / direction, np.inf)
        to_upper = np.where(direction > 0, (upper - matrix) / direction, np.inf)
    bound = float(min(to_lower.min(initial=np.inf), to_upper.min(initial=np.inf)))
    if not np.isfinite(bound):
        return np.inf
    return max(bound, 0.0)
