"""Aggregation of streamed sweep records into per-family fronts.

A sweep's deliverable is not the pile of cells but the tradeoff
frontier each topology traces as the weights, methods, and seeds vary:
for every topology label the non-dominated ``(Delta C, E-bar)`` pairs
among its cells.  Records never need to be held per-shard — fronts fold
associatively at ``tol = 0`` (see
:func:`repro.analysis.pareto.merge_pareto_fronts`), so aggregation
streams over :func:`repro.sweep.stream.iter_sweep_records` output in
one pass.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.analysis.pareto import pareto_front_indices
from repro.sweep.grid import cell_from_dict, topology_label

#: The record coordinates a front is computed over, both minimized.
FRONT_METRICS = ("delta_c", "e_bar")


def front_records(records: Iterable[dict]) -> Dict[str, List[dict]]:
    """Group records by topology label and keep each group's front.

    Returns ``{label: [record, ...]}`` with each group's records
    restricted to its Pareto-efficient subset, ordered by coordinates
    (ties by arrival order).  Input order otherwise does not matter.
    """
    groups: Dict[str, List[dict]] = {}
    for record in records:
        label = topology_label(cell_from_dict(record["cell"]))
        groups.setdefault(label, []).append(record)
    fronts: Dict[str, List[dict]] = {}
    for label, members in sorted(groups.items()):
        points = np.array(
            [[member["result"][metric] for metric in FRONT_METRICS]
             for member in members]
        )
        indices = pareto_front_indices(points)
        fronts[label] = [members[i] for i in indices]
    return fronts


def front_summary(records: Iterable[dict]) -> Dict[str, List[dict]]:
    """JSON-plain per-family front summary (the report artifact).

    For each topology label: the front's coordinate pairs plus enough
    cell identity (digest, weights, method, seed) to re-run any front
    point standalone.
    """
    summary: Dict[str, List[dict]] = {}
    for label, members in front_records(records).items():
        summary[label] = [
            {
                "digest": record["digest"],
                "delta_c": record["result"]["delta_c"],
                "e_bar": record["result"]["e_bar"],
                "alpha": record["cell"]["alpha"],
                "beta": record["cell"]["beta"],
                "method": record["cell"]["method"],
                "seed": record["cell"]["seed"],
            }
            for record in members
        ]
    return summary
