"""Durable streaming of sweep records: append-only JSONL shards.

Each shard is a ``shard-NNN.jsonl`` file in the sweep output directory.
Records are written one canonical-JSON line at a time, each followed by
``flush`` + ``fsync``, so a record either reaches the disk whole (with
its trailing newline) or not at all from the reader's point of view: a
partial trailing line — the footprint of a kill mid-write — is simply
an incomplete record.  :class:`ShardWriter` truncates such a tail when
it reopens the shard, and :func:`read_records` ignores it, which is the
entire resume story: the set of completed cell digests on disk is
exactly the set of whole lines.

:func:`merge_shards` folds every shard into one canonical JSONL file
sorted by cell digest — the artifact two sweeps are compared by when
asserting that kill-and-resume loses and duplicates nothing.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from typing import Dict, Iterator, List, Set

from repro.persist import canonical_json

SHARD_PATTERN = re.compile(r"^shard-(\d+)\.jsonl$")


def shard_path(out_dir, shard: int) -> pathlib.Path:
    """Path of shard ``shard`` inside ``out_dir``."""
    return pathlib.Path(out_dir) / f"shard-{shard:03d}.jsonl"


def list_shards(out_dir) -> List[pathlib.Path]:
    """Existing shard files of a sweep directory, in shard order."""
    directory = pathlib.Path(out_dir)
    if not directory.is_dir():
        return []
    shards = [
        path for path in directory.iterdir()
        if SHARD_PATTERN.match(path.name)
    ]
    return sorted(shards)


class ShardWriter:
    """Append-only writer of one JSONL shard.

    Opening repairs a partial trailing line left by a kill mid-write
    (truncates back to the last newline), so appending always starts at
    a record boundary.  Every :meth:`write_record` is flushed and
    fsynced before returning — once the call returns, the record
    survives any crash.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.records_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_tail()
        self._file = open(self.path, "ab")

    def _repair_tail(self) -> None:
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        with open(self.path, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            data = handle.read(size)
            keep = data.rfind(b"\n") + 1  # 0 when no newline at all
            handle.truncate(keep)

    def write_record(self, record: dict) -> None:
        """Append one record durably (canonical JSON + newline)."""
        line = canonical_json(record).encode("utf-8") + b"\n"
        self._file.write(line)
        self._file.flush()
        os.fsync(self._file.fileno())
        self.records_written += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_records(path) -> Iterator[dict]:
    """Iterate the whole records of one shard file.

    A partial trailing line (no newline — a killed write) is skipped.
    A malformed line *before* the tail means the file was corrupted by
    something other than a mid-write kill, and raises.
    """
    path = pathlib.Path(path)
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.split(b"\n")
    tail = lines.pop()  # b"" when the file ends with a newline
    for number, line in enumerate(lines, start=1):
        try:
            yield json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{number}: corrupt record (not a killed "
                f"trailing write): {exc}"
            ) from exc
    # ``tail`` is deliberately dropped: it is the footprint of a kill
    # mid-write and the cell it described was never marked complete.


def iter_sweep_records(out_dir) -> Iterator[dict]:
    """Iterate every whole record of every shard, in shard order."""
    for shard in list_shards(out_dir):
        yield from read_records(shard)


def completed_digests(out_dir) -> Set[str]:
    """Cell digests already completed in a sweep directory."""
    return {record["digest"] for record in iter_sweep_records(out_dir)}


def merge_shards(out_dir, path) -> int:
    """Write every shard record to ``path``, sorted by cell digest.

    The canonical merged artifact: two sweep directories hold the same
    completed work iff their merged files are byte-identical.  Written
    atomically (temp file + rename).  Returns the record count; raises
    on duplicate digests (a duplicated cell is a sweep bug, never an
    artifact of resume).
    """
    by_digest: Dict[str, dict] = {}
    for record in iter_sweep_records(out_dir):
        digest = record["digest"]
        if digest in by_digest:
            raise ValueError(
                f"duplicate cell digest across shards: {digest}"
            )
        by_digest[digest] = record
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        for digest in sorted(by_digest):
            handle.write(
                canonical_json(by_digest[digest]).encode("utf-8") + b"\n"
            )
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(by_digest)
