"""Declarative scenario grids and their expansion into sweep cells.

A sweep is described by a :class:`SweepGrid` — topology family x size x
Phi profile x :class:`~repro.core.cost.CostWeights` x optimizer method
x seed — loaded from JSON (:func:`load_grid`) or built in code.
:meth:`SweepGrid.expand` enumerates the cells in a fixed nested order;
each :class:`SweepCell` is a complete, self-contained description of
one optimization run, and :func:`cell_digest` content-addresses it (via
:func:`repro.persist.json_digest`), which is what makes sweeps
deduplicable and resumable: a cell's digest never changes unless the
work it describes changes.

:func:`run_cell` is the *single* execution path for a cell — the sweep
driver's workers call it, and so does anyone re-running a cell
standalone — so a streamed sweep record is bit-identical to running the
cell by hand through :func:`repro.optimize` (asserted in
``tests/sweep/test_driver.py``).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.api import OPTIMIZER_REGISTRY
from repro.core.cost import LINALG_MODES, CostWeights, CoverageCost
from repro.core.options import coerce_options
from repro.core.registry import normalize_extra_terms
from repro.persist import json_digest
from repro.topology.library import (
    PAPER_TOPOLOGY_IDS,
    SCALABLE_FAMILIES,
    paper_topology,
    scalable_topology,
)
from repro.topology.model import Topology

#: Schema tags for the grid file and the streamed cell records.
GRID_SCHEMA = "repro/sweep-grid/v1"
CELL_SCHEMA = "repro/sweep-cell/v1"

#: Topology families a grid may name: the paper reconstructions (whose
#: "size" is the paper id) plus the scalable sparse-support families.
FAMILIES = ("paper",) + SCALABLE_FAMILIES

#: Phi (target-share) profile kinds.  ``"paper"`` is the only profile
#: of the paper topologies (their shares are fixed by the paper);
#: scalable families take ``"uniform"`` or ``"dirichlet"``.
PHI_KINDS = ("paper", "uniform", "dirichlet")


@dataclass(frozen=True)
class SweepCell:
    """One fully specified scenario: topology, weights, method, seed.

    Frozen and JSON-plain on purpose — :func:`cell_digest` hashes the
    canonical JSON of :func:`cell_to_dict`, so every field is part of
    the cell's identity.
    """

    family: str
    size: int                 # PoI count; paper id for family="paper"
    phi: str                  # Phi profile kind (see PHI_KINDS)
    phi_alpha: float          # Dirichlet concentration (dirichlet only)
    phi_seed: int             # topology/allocation seed
    alpha: float              # coverage weight
    beta: float               # exposure weight
    epsilon: float            # barrier band width
    method: str               # OPTIMIZER_REGISTRY key
    seed: int                 # optimizer seed
    iterations: int
    starts: int               # multistart portfolio size (else ignored)
    trisection_rounds: int
    linalg: str
    #: Plugin cost terms, in normalize_extra_terms' canonical triple
    #: form.  Empty for the paper objective — and then omitted from
    #: cell_to_dict, so compositions change a cell's digest but bare
    #: cells keep their historical identity (old sweep directories
    #: resume cleanly).
    terms: Tuple = ()


def cell_to_dict(cell: SweepCell) -> dict:
    """Plain-JSON form of a cell (the ``"cell"`` record field)."""
    payload = asdict(cell)
    terms = payload.pop("terms", ())
    if terms:
        payload["terms"] = [
            [name, weight, dict(params)]
            for name, weight, params in terms
        ]
    return payload


def cell_from_dict(data: dict) -> SweepCell:
    """Inverse of :func:`cell_to_dict`; unknown keys raise.

    ``terms`` is optional — records written before the cost-term
    registry existed simply have no plugin terms.
    """
    data = dict(data)
    terms = data.pop("terms", ())
    known = {f for f in SweepCell.__dataclass_fields__} - {"terms"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown cell fields: {', '.join(unknown)}")
    missing = sorted(known - set(data))
    if missing:
        raise ValueError(f"missing cell fields: {', '.join(missing)}")
    return SweepCell(terms=normalize_extra_terms(terms), **data)


def cell_digest(cell: SweepCell) -> str:
    """Content digest of a cell — the sweep's dedup/resume identity."""
    return json_digest(cell_to_dict(cell))


def topology_key(cell: SweepCell) -> Tuple:
    """The subset of a cell's identity that determines its topology.

    Cells sharing a key share (value-identical) topology tensors; the
    driver orders the shard queue by this key so consecutive tasks hit
    the broadcast-once cache instead of re-shipping the tensors.
    """
    return (cell.family, cell.size, cell.phi, cell.phi_alpha,
            cell.phi_seed)


def topology_label(cell: SweepCell) -> str:
    """Human-readable family label used for per-family aggregation."""
    if cell.family == "paper":
        return f"paper-{cell.size}"
    label = f"{cell.family}-{cell.size}/{cell.phi}"
    if cell.phi == "dirichlet":
        label += f"(a={cell.phi_alpha:g},s={cell.phi_seed})"
    return label


def build_topology(cell: SweepCell) -> Topology:
    """Construct the cell's topology (deterministic per cell)."""
    if cell.family == "paper":
        return paper_topology(cell.size)
    dirichlet = cell.phi_alpha if cell.phi == "dirichlet" else None
    return scalable_topology(
        cell.family, cell.size, seed=cell.phi_seed,
        dirichlet_alpha=dirichlet,
    )


@dataclass(frozen=True)
class SweepGrid:
    """A declarative scenario grid; ``expand`` enumerates its cells.

    ``topologies`` entries are mappings with ``family``, ``sizes``, and
    (scalable families only) a ``phi`` list of profile mappings
    (``{"kind": "uniform"}`` or ``{"kind": "dirichlet", "alpha": 2.0,
    "seed": 7}``).  ``weights`` entries carry ``alpha``/``beta`` and an
    optional ``epsilon``.  Expansion order is fixed — topologies,
    sizes, phi, weights, methods, seeds — so a grid always enumerates
    the same cells in the same order.
    """

    topologies: Tuple[dict, ...]
    weights: Tuple[dict, ...]
    methods: Tuple[str, ...] = ("perturbed",)
    seeds: Tuple[int, ...] = (0,)
    iterations: int = 100
    starts: int = 1
    trisection_rounds: int = 20
    linalg: str = "auto"
    include_matrix: bool = False
    #: Plugin cost terms applied to every cell, in any form
    #: :func:`~repro.core.registry.normalize_extra_terms` accepts
    #: (canonicalized and validated at construction).
    terms: Tuple = ()

    def __post_init__(self) -> None:
        # Canonicalize + validate the term composition up front: a bad
        # term name fails at grid load, not on a shard worker mid-sweep.
        object.__setattr__(
            self, "terms", normalize_extra_terms(self.terms)
        )
        if not self.topologies:
            raise ValueError("grid needs at least one topologies entry")
        if not self.weights:
            raise ValueError("grid needs at least one weights entry")
        if not self.methods:
            raise ValueError("grid needs at least one method")
        if not self.seeds:
            raise ValueError("grid needs at least one seed")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.starts < 1:
            raise ValueError("starts must be >= 1")
        if self.linalg not in LINALG_MODES:
            raise ValueError(
                f"unknown linalg {self.linalg!r}; valid: {LINALG_MODES}"
            )
        for method in self.methods:
            if method not in OPTIMIZER_REGISTRY:
                known = ", ".join(sorted(OPTIMIZER_REGISTRY))
                raise ValueError(
                    f"unknown method {method!r}; available: {known}"
                )
        for entry in self.topologies:
            self._check_topology_entry(entry)
        for entry in self.weights:
            unknown = sorted(
                set(entry) - {"alpha", "beta", "epsilon"}
            )
            if unknown:
                raise ValueError(
                    f"unknown weights keys: {', '.join(unknown)}"
                )
            if "alpha" not in entry or "beta" not in entry:
                raise ValueError(
                    "every weights entry needs alpha and beta"
                )

    @staticmethod
    def _check_topology_entry(entry: dict) -> None:
        unknown = sorted(set(entry) - {"family", "sizes", "phi"})
        if unknown:
            raise ValueError(
                f"unknown topologies keys: {', '.join(unknown)}"
            )
        family = entry.get("family")
        if family not in FAMILIES:
            raise ValueError(
                f"unknown family {family!r}; valid: {FAMILIES}"
            )
        sizes = entry.get("sizes")
        if not sizes:
            raise ValueError(f"family {family!r} needs a sizes list")
        if family == "paper":
            bad = [s for s in sizes if s not in PAPER_TOPOLOGY_IDS]
            if bad:
                raise ValueError(
                    f"paper sizes are topology ids {PAPER_TOPOLOGY_IDS},"
                    f" got {bad}"
                )
            if entry.get("phi"):
                raise ValueError(
                    "paper topologies have fixed target shares; "
                    "omit the phi list"
                )
        for profile in entry.get("phi") or ():
            kind = profile.get("kind")
            if kind not in ("uniform", "dirichlet"):
                raise ValueError(
                    f"unknown phi kind {kind!r}; valid: uniform, "
                    "dirichlet"
                )
            unknown = sorted(set(profile) - {"kind", "alpha", "seed"})
            if unknown:
                raise ValueError(
                    f"unknown phi keys: {', '.join(unknown)}"
                )
            if kind == "dirichlet" and "alpha" not in profile:
                raise ValueError("dirichlet phi profiles need alpha")

    def expand(self) -> List[SweepCell]:
        """Enumerate every cell of the grid, in the fixed nested order.

        The list may contain value-identical cells when axes overlap
        (e.g. the same size listed twice); the driver deduplicates by
        digest before running.
        """
        cells: List[SweepCell] = []
        for entry in self.topologies:
            family = entry["family"]
            if family == "paper":
                profiles: Sequence[dict] = ({"kind": "paper"},)
            else:
                profiles = tuple(entry.get("phi") or ()) or (
                    {"kind": "uniform"},
                )
            for size in entry["sizes"]:
                for profile in profiles:
                    kind = profile["kind"]
                    phi_alpha = float(profile.get("alpha", 0.0))
                    phi_seed = int(profile.get("seed", 0))
                    for weights in self.weights:
                        for method in self.methods:
                            for seed in self.seeds:
                                cells.append(SweepCell(
                                    family=family,
                                    size=int(size),
                                    phi=kind,
                                    phi_alpha=phi_alpha,
                                    phi_seed=phi_seed,
                                    alpha=float(weights["alpha"]),
                                    beta=float(weights["beta"]),
                                    epsilon=float(
                                        weights.get("epsilon", 1e-4)
                                    ),
                                    method=method,
                                    seed=int(seed),
                                    iterations=self.iterations,
                                    starts=self.starts,
                                    trisection_rounds=(
                                        self.trisection_rounds
                                    ),
                                    linalg=self.linalg,
                                    terms=self.terms,
                                ))
        return cells

    def to_dict(self) -> dict:
        payload = {
            "schema": GRID_SCHEMA,
            "topologies": [dict(e) for e in self.topologies],
            "weights": [dict(e) for e in self.weights],
            "methods": list(self.methods),
            "seeds": list(self.seeds),
            "iterations": self.iterations,
            "starts": self.starts,
            "trisection_rounds": self.trisection_rounds,
            "linalg": self.linalg,
            "include_matrix": self.include_matrix,
        }
        if self.terms:
            payload["terms"] = [
                [name, weight, dict(params)]
                for name, weight, params in self.terms
            ]
        return payload

    def with_linalg(self, linalg: str) -> "SweepGrid":
        """Copy of the grid with its linalg mode overridden (changes
        every cell digest — a different backend is different work)."""
        return replace(self, linalg=linalg)

    def with_terms(self, terms) -> "SweepGrid":
        """Copy of the grid with its plugin-term composition replaced.

        A non-empty composition changes every cell digest — optimizing
        a different objective is different work; passing the current
        composition leaves digests untouched."""
        return replace(self, terms=normalize_extra_terms(terms))


def grid_from_dict(data: dict) -> SweepGrid:
    """Build a :class:`SweepGrid` from its JSON form."""
    schema = data.get("schema")
    if schema != GRID_SCHEMA:
        raise ValueError(
            f"expected schema {GRID_SCHEMA!r}, got {schema!r}"
        )
    known = {
        "schema", "topologies", "weights", "methods", "seeds",
        "iterations", "starts", "trisection_rounds", "linalg",
        "include_matrix", "terms",
    }
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown grid keys: {', '.join(unknown)}")
    kwargs = {}
    for key in ("methods", "seeds"):
        if key in data:
            kwargs[key] = tuple(data[key])
    for key in ("iterations", "starts", "trisection_rounds"):
        if key in data:
            kwargs[key] = int(data[key])
    if "linalg" in data:
        kwargs["linalg"] = data["linalg"]
    if "include_matrix" in data:
        kwargs["include_matrix"] = bool(data["include_matrix"])
    if "terms" in data:
        kwargs["terms"] = tuple(
            tuple(entry) if isinstance(entry, list) else entry
            for entry in data["terms"]
        )
    return SweepGrid(
        topologies=tuple(data.get("topologies") or ()),
        weights=tuple(data.get("weights") or ()),
        **kwargs,
    )


def load_grid(path) -> SweepGrid:
    """Read a grid JSON file written by hand or :meth:`to_dict`."""
    return grid_from_dict(json.loads(pathlib.Path(path).read_text()))


def save_grid(grid: SweepGrid, path) -> None:
    """Write a grid as JSON (the inverse of :func:`load_grid`)."""
    pathlib.Path(path).write_text(
        json.dumps(grid.to_dict(), indent=2) + "\n"
    )


# --------------------------------------------------------------------- #
# Cell execution — the one code path shared by sweeps and standalone
# --------------------------------------------------------------------- #


def _cell_options(cell: SweepCell, spec) -> dict:
    fields = set(spec.options_class.__dataclass_fields__)
    options = {
        "max_iterations": cell.iterations,
        "record_history": False,
    }
    if "trisection_rounds" in fields:
        options["trisection_rounds"] = cell.trisection_rounds
    if "stall_limit" in fields:
        # One shared budget: never stop a run early (the sweep's cells
        # must be comparable across methods and weights).
        options["stall_limit"] = cell.iterations + 1
    return options


def run_cell(cell: SweepCell, topology: Optional[Topology] = None):
    """Execute one cell; returns ``(record, matrix)``.

    ``record`` is the JSON-plain streamed result (without the matrix —
    the driver embeds it when the grid asks); ``matrix`` is the best
    transition matrix as an ndarray (returned separately so process
    workers ship it through the shared-memory result path).

    ``topology`` may be passed to reuse an already-built instance —
    construction is deterministic, so results are bit-identical either
    way (the driver shares one instance per topology key to hit the
    broadcast cache).
    """
    from repro.core.api import optimize

    if topology is None:
        topology = build_topology(cell)
    spec = OPTIMIZER_REGISTRY[cell.method]
    cost = CoverageCost(
        topology,
        CostWeights(
            alpha=cell.alpha, beta=cell.beta, epsilon=cell.epsilon
        ),
        linalg=cell.linalg,
        extra_terms=cell.terms,
    )
    options = coerce_options(
        spec.options_class, _cell_options(cell, spec), method=cell.method
    )
    kwargs = {}
    if spec.accepts_seed:
        kwargs["seed"] = cell.seed
    if cell.method == "multistart":
        kwargs["random_starts"] = cell.starts
    result = optimize(cost, method=cell.method, options=options, **kwargs)
    if cell.method == "multistart":
        result = result.best
    record = {
        "schema": CELL_SCHEMA,
        "digest": cell_digest(cell),
        "cell": cell_to_dict(cell),
        "result": {
            "u": float(result.u),
            "u_eps": float(result.u_eps),
            "best_u_eps": float(result.best_u_eps),
            "delta_c": float(result.delta_c),
            "e_bar": float(result.e_bar),
            "iterations": int(result.iterations),
            "converged": bool(result.converged),
            "stop_reason": str(result.stop_reason),
        },
    }
    import numpy as np

    return record, np.asarray(result.best_matrix, dtype=float)
