"""The sharded sweep driver: streaming, resumable fan-out over cells.

:func:`run_sweep` turns a :class:`~repro.sweep.grid.SweepGrid` into
durable results:

1. **Expand + dedup** — the grid enumerates its cells; value-identical
   cells (overlapping axes) collapse by content digest.
2. **Resume** — cells whose digest already has a whole record on disk
   are skipped.  Since a record only exists once it is fsynced (see
   :mod:`repro.sweep.stream`), killing a sweep at any instant loses at
   most the in-flight cells and duplicates none.
3. **Shard** — pending cells are grouped by topology key and groups are
   dealt to ``shards`` queues (greedy balance, deterministic), so cells
   sharing topology tensors run consecutively on the same pool
   generation and hit the broadcast-once cache instead of re-shipping.
4. **Stream** — each shard runs through an executor's ``imap`` and
   every finished record is written (flush + fsync) the moment it
   lands.
5. **Reuse** — with the process backend, one
   :class:`~repro.exec.shm.SharedTensorStore` owned by the driver is
   retained by every shard's executor, so broadcast segments survive
   pool shutdowns between shards instead of being re-exported
   (PR 7's cross-pool headroom).

The driver finishes by folding the *whole* directory (old and new
records) into per-family Pareto fronts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exec import ProcessExecutor, get_executor
from repro.sweep.aggregate import front_summary
from repro.sweep.grid import (
    SweepCell,
    SweepGrid,
    build_topology,
    cell_digest,
    run_cell,
    topology_key,
)
from repro.sweep.stream import (
    ShardWriter,
    completed_digests,
    iter_sweep_records,
    list_shards,
    shard_path,
)


def _sweep_task(task):
    """Module-level task body (process-backend picklable): run one cell
    against its (possibly broadcast-shared) topology."""
    cell, topology = task
    return run_cell(cell, topology=topology)


@dataclass
class SweepReport:
    """What a :func:`run_sweep` invocation did, and what is on disk.

    Counters describe *this* invocation (``ran``, transfer bytes);
    ``records`` and ``fronts`` describe the whole directory including
    records from earlier resumed runs.
    """

    out_dir: str
    backend: str
    shards: int
    total_cells: int          # grid expansion size
    unique_cells: int         # after digest dedup
    duplicate_cells: int      # collapsed by dedup
    skipped_cells: int        # already on disk (resume)
    ran_cells: int            # executed and written by this invocation
    interrupted: bool         # stopped early by max_cells
    records: int              # whole records now on disk
    wall_seconds: float
    dispatch_bytes: int = 0
    result_bytes: int = 0
    broadcast_requests: int = 0
    broadcast_hits: int = 0
    fronts: Dict[str, List[dict]] = field(default_factory=dict)

    @property
    def broadcast_hit_ratio(self) -> float:
        if not self.broadcast_requests:
            return 0.0
        return self.broadcast_hits / self.broadcast_requests


def dedup_cells(cells) -> Tuple[List[Tuple[str, SweepCell]], int]:
    """Collapse value-identical cells; returns ``(unique, dropped)``.

    ``unique`` pairs each first-occurrence cell with its digest, in
    expansion order.
    """
    seen = set()
    unique: List[Tuple[str, SweepCell]] = []
    dropped = 0
    for cell in cells:
        digest = cell_digest(cell)
        if digest in seen:
            dropped += 1
            continue
        seen.add(digest)
        unique.append((digest, cell))
    return unique, dropped


def plan_shards(
    pending: List[Tuple[str, SweepCell]], shards: int
) -> List[List[Tuple[str, SweepCell]]]:
    """Deal pending cells to ``shards`` queues, keeping topology groups
    intact.

    Cells are grouped by :func:`topology_key` (first-appearance order);
    each group goes whole to the currently lightest queue (ties to the
    lowest index), so the deal is deterministic, roughly balanced, and
    cells sharing topology tensors stay consecutive on one queue —
    which is what makes the broadcast-once cache pay off.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    groups: Dict[Tuple, List[Tuple[str, SweepCell]]] = {}
    order: List[Tuple] = []
    for digest, cell in pending:
        key = topology_key(cell)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((digest, cell))
    queues: List[List[Tuple[str, SweepCell]]] = [[] for _ in range(shards)]
    for key in order:
        lightest = min(range(shards), key=lambda i: (len(queues[i]), i))
        queues[lightest].extend(groups[key])
    return queues


def run_sweep(
    grid: SweepGrid,
    out_dir,
    shards: int = 1,
    backend: str = "serial",
    jobs: Optional[int] = None,
    transport: Optional[str] = None,
    resume: bool = False,
    max_cells: Optional[int] = None,
) -> SweepReport:
    """Run (or resume) a sweep; returns a :class:`SweepReport`.

    ``out_dir`` holds the shard files; a directory that already
    contains shards requires ``resume=True`` (refusing is what keeps an
    accidental re-run from silently mixing two different grids —
    resuming the *same* grid is always safe because identity is the
    cell digest).  ``max_cells`` caps how many cells this invocation
    executes — the test-and-benchmark hook for simulating a kill at a
    record boundary.
    """
    start = time.perf_counter()
    cells = grid.expand()
    unique, duplicates = dedup_cells(cells)

    existing = list_shards(out_dir)
    if existing and not resume:
        raise ValueError(
            f"{out_dir} already holds {len(existing)} shard file(s); "
            "pass resume=True to continue it"
        )
    done = completed_digests(out_dir) if existing else set()
    pending = [(d, c) for d, c in unique if d not in done]
    skipped = len(unique) - len(pending)
    if max_cells is not None:
        if max_cells < 0:
            raise ValueError(f"max_cells must be >= 0, got {max_cells}")
        budget = max_cells
    else:
        budget = len(pending)

    queues = plan_shards(pending, shards)

    # One topology instance per key, owned by the driver and kept alive
    # for the whole sweep: every task sharing it hits the store's
    # id-memo, and with the process backend its tensors broadcast once
    # per sweep, not once per shard or pool generation.
    topologies: Dict[Tuple, object] = {}
    for _, cell in pending:
        key = topology_key(cell)
        if key not in topologies:
            topologies[key] = build_topology(cell)

    shared_store = None
    if backend == "process":
        from repro.exec.shm import SharedTensorStore

        shared_store = SharedTensorStore()

    ran = 0
    dispatch_bytes = 0
    result_bytes = 0
    try:
        for shard, queue in enumerate(queues):
            if not queue or ran >= budget:
                continue
            take = queue[: budget - ran]
            tasks = [
                (cell, topologies[topology_key(cell)])
                for _, cell in take
            ]
            if backend == "process":
                executor = ProcessExecutor(
                    jobs=jobs,
                    transport=transport or "auto",
                    store=shared_store,
                )
            else:
                executor = get_executor(
                    backend, jobs=jobs, transport=transport
                )
            try:
                with ShardWriter(shard_path(out_dir, shard)) as writer:
                    for _, (record, matrix) in executor.imap(
                        _sweep_task, tasks
                    ):
                        if grid.include_matrix:
                            record = dict(record)
                            record["matrix"] = matrix.tolist()
                        writer.write_record(record)
                        ran += 1
            finally:
                dispatch_bytes += executor.timings.dispatch_bytes
                result_bytes += executor.timings.result_bytes
                executor.close()
    finally:
        broadcast_requests = broadcast_hits = 0
        if shared_store is not None:
            broadcast_requests = shared_store.broadcast_requests
            broadcast_hits = shared_store.broadcast_hits
            shared_store.close()

    records = list(iter_sweep_records(out_dir))
    return SweepReport(
        out_dir=str(out_dir),
        backend=backend,
        shards=shards,
        total_cells=len(cells),
        unique_cells=len(unique),
        duplicate_cells=duplicates,
        skipped_cells=skipped,
        ran_cells=ran,
        interrupted=ran < len(pending),
        records=len(records),
        wall_seconds=time.perf_counter() - start,
        dispatch_bytes=dispatch_bytes,
        result_bytes=result_bytes,
        broadcast_requests=broadcast_requests,
        broadcast_hits=broadcast_hits,
        fronts=front_summary(records),
    )
