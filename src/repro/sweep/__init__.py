"""Sharded scenario sweeps: declarative grids, streaming resumable
fan-out across executor backends, per-family Pareto aggregation.

See ``docs/sweeps.md`` for the grid schema and resume semantics.
"""

from repro.sweep.aggregate import front_records, front_summary
from repro.sweep.driver import (
    SweepReport,
    dedup_cells,
    plan_shards,
    run_sweep,
)
from repro.sweep.grid import (
    CELL_SCHEMA,
    GRID_SCHEMA,
    SweepCell,
    SweepGrid,
    build_topology,
    cell_digest,
    cell_from_dict,
    cell_to_dict,
    grid_from_dict,
    load_grid,
    run_cell,
    save_grid,
    topology_key,
    topology_label,
)
from repro.sweep.stream import (
    ShardWriter,
    completed_digests,
    iter_sweep_records,
    list_shards,
    merge_shards,
    read_records,
    shard_path,
)

__all__ = [
    "CELL_SCHEMA",
    "GRID_SCHEMA",
    "ShardWriter",
    "SweepCell",
    "SweepGrid",
    "SweepReport",
    "build_topology",
    "cell_digest",
    "cell_from_dict",
    "cell_to_dict",
    "completed_digests",
    "dedup_cells",
    "front_records",
    "front_summary",
    "grid_from_dict",
    "iter_sweep_records",
    "list_shards",
    "load_grid",
    "merge_shards",
    "plan_shards",
    "read_records",
    "run_cell",
    "run_sweep",
    "save_grid",
    "shard_path",
    "topology_key",
    "topology_label",
]
