"""Baseline comparison (Section II's positioning claims).

The paper argues that existing stateless schedulers cannot optimize the
multi-objective tradeoff: MCMC can target a coverage distribution but not
trade it against exposure, and simple policies control neither.  This
experiment quantifies that on the paper's topologies: for each scheduler
we report the coverage deviation ``Delta C``, aggregate exposure
``E-bar``, and the combined cost ``U`` at a reference weighting.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.heuristics import (
    nearest_neighbor_matrix,
    proportional_matrix,
    uniform_policy_matrix,
)
from repro.baselines.maxent import max_entropy_matrix
from repro.baselines.mcmc import stationary_for_target_coverage
from repro.core.cost import CostWeights, CoverageCost
from repro.core.perturbed import PerturbedOptions, optimize_perturbed
from repro.experiments.config import current_scale
from repro.experiments.reporting import TableResult
from repro.topology.library import paper_topology
from repro.topology.model import Topology


def baseline_comparison(
    topology: Optional[Topology] = None,
    alpha: float = 1.0,
    beta: float = 1e-3,
    iterations: Optional[int] = None,
    seed: int = 0,
) -> TableResult:
    """Compare every baseline against the steepest-descent optimizer."""
    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.search_iterations
    weights = CostWeights(alpha=alpha, beta=beta)
    cost = CoverageCost(topology, weights)
    phi = topology.target_shares

    candidates = [
        ("uniform walk", uniform_policy_matrix(topology.size)),
        ("proportional (lottery)", proportional_matrix(phi)),
        ("nearest-neighbor", nearest_neighbor_matrix(topology)),
        ("max-entropy (pi=Phi)", max_entropy_matrix(pi=phi)),
    ]
    _, mh_matrix = stationary_for_target_coverage(topology)
    candidates.append(("MCMC (coverage-corrected MH)", mh_matrix))

    optimized = optimize_perturbed(
        cost,
        seed=seed,
        options=PerturbedOptions(
            max_iterations=iterations, trisection_rounds=20,
            stall_limit=iterations + 1, record_history=False,
        ),
    )
    candidates.append(("steepest descent (ours)", optimized.best_matrix))

    rows = []
    for label, matrix in candidates:
        rows.append(
            [
                label,
                cost.delta_c(matrix),
                cost.e_bar(matrix),
                cost.evaluate(matrix).u,
            ]
        )
    return TableResult(
        experiment_id="Baseline B1",
        title=(
            f"baselines vs steepest descent (alpha={alpha:g}, "
            f"beta={beta:g}, {topology.name})"
        ),
        columns=["scheduler", "dC", "E-bar", "U"],
        rows=rows,
        notes=(
            "Shape check: steepest descent achieves the lowest combined "
            "cost U; MCMC is competitive on dC only."
        ),
    )
