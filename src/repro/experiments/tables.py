"""Reproduction of the paper's Tables I-IV.

* Table I — achieved coverage shares ``C-bar_i`` across the ``alpha:beta``
  sweep (Topology 3).
* Table II — per-PoI exposure times ``E-bar_i`` for the same sweep.
* Table III — min/max/average optimal cost of the adaptive vs the
  perturbed algorithm over many independent runs (``alpha=0, beta=1``,
  Topology 1).
* Table IV — realized ``Delta C`` and ``E-bar`` when the optimized
  matrices drive actual Markov chain simulations (Topology 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost import CostWeights, CoverageCost
from repro.experiments.config import current_scale
from repro.experiments.reporting import TableResult
from repro.experiments.runner import (
    metric_band,
    optimize_weight_setting,
    run_many,
    simulate_repeatedly,
)
from repro.topology.library import paper_topology
from repro.topology.model import Topology

#: The ``alpha : beta`` ratios of Tables I and II, in sweep order.
TABLE1_RATIOS: Tuple[Tuple[float, float], ...] = (
    (0.0, 1.0),
    (1.0, 1.0),
    (1.0, 1e-2),
    (1.0, 1e-4),
    (1.0, 1e-6),
    (1.0, 0.0),
)

#: The ``alpha : beta`` ratios of Table IV.
TABLE4_RATIOS: Tuple[Tuple[float, float], ...] = (
    (0.0, 1.0),
    (1.0, 1.0),
    (1.0, 1e-4),
    (1.0, 0.0),
)


def _ratio_label(alpha: float, beta: float) -> str:
    return f"{alpha:g}:{beta:g}"


@dataclass
class SweepEntry:
    """Optimized outcome for one ``(alpha, beta)`` weighting."""

    alpha: float
    beta: float
    matrix: np.ndarray
    u_eps: float
    coverage_shares: np.ndarray
    exposure_times: np.ndarray
    delta_c: float
    e_bar: float
    stationary: np.ndarray


def run_weight_sweep(
    topology: Optional[Topology] = None,
    ratios: Sequence[Tuple[float, float]] = TABLE1_RATIOS,
    iterations: Optional[int] = None,
    random_starts: Optional[int] = None,
    seed: int = 0,
    executor=None,
) -> List[SweepEntry]:
    """Optimize every ``(alpha, beta)`` in ``ratios`` with continuation.

    The ratios are processed in the given order (decreasing ``beta`` in
    the paper's tables); each setting warm-starts from the previous
    optimum in addition to the standard multi-start portfolio, which
    tracks the optimum across the fast-to-slow schedule transition (see
    DESIGN.md section 3 on the multi-start device).
    """
    from repro.core.state import ChainState

    scale = current_scale()
    topology = topology or paper_topology(3)
    iterations = iterations or scale.sweep_iterations
    random_starts = (
        scale.sweep_random_starts if random_starts is None else random_starts
    )
    entries: List[SweepEntry] = []
    previous: Optional[np.ndarray] = None
    for index, (alpha, beta) in enumerate(ratios):
        result = optimize_weight_setting(
            topology,
            alpha=alpha,
            beta=beta,
            iterations=iterations,
            random_starts=random_starts,
            seed=seed + 1000 * index,
            initial=previous,
            executor=executor,
        )
        matrix = result.best_matrix
        # Report metrics with a metric-only cost (weights do not matter for
        # C-bar / E-bar themselves).
        metrics = CoverageCost(
            topology, CostWeights(alpha=1.0, beta=1.0)
        )
        state = ChainState.from_matrix(matrix)
        entries.append(
            SweepEntry(
                alpha=alpha,
                beta=beta,
                matrix=matrix,
                u_eps=result.best_u_eps,
                coverage_shares=metrics.coverage_shares(state),
                exposure_times=metrics.exposure_times(state),
                delta_c=metrics.delta_c(state),
                e_bar=metrics.e_bar(state),
                stationary=state.pi,
            )
        )
        previous = matrix
    return entries


def table1(
    topology: Optional[Topology] = None,
    sweep: Optional[List[SweepEntry]] = None,
    seed: int = 0,
) -> TableResult:
    """Table I: achieved coverage shares ``C-bar_i`` per weight ratio."""
    topology = topology or paper_topology(3)
    sweep = sweep if sweep is not None else run_weight_sweep(
        topology, seed=seed
    )
    columns = ["alpha:beta"] + [
        f"C{i + 1}" for i in range(topology.size)
    ]
    rows = [
        [_ratio_label(e.alpha, e.beta)] + list(e.coverage_shares)
        for e in sweep
    ]
    rows.append(["target Phi"] + list(topology.target_shares))
    return TableResult(
        experiment_id="Table I",
        title=f"C-bar_i per alpha:beta ratio ({topology.name})",
        columns=columns,
        rows=rows,
        raw={"sweep": sweep, "topology": topology.name},
        notes=(
            "Shape check: as beta decreases, C-bar rows approach the "
            "target Phi row."
        ),
    )


def table2(
    topology: Optional[Topology] = None,
    sweep: Optional[List[SweepEntry]] = None,
    seed: int = 0,
) -> TableResult:
    """Table II: per-PoI exposure times ``E-bar_i`` per weight ratio."""
    topology = topology or paper_topology(3)
    sweep = sweep if sweep is not None else run_weight_sweep(
        topology, seed=seed
    )
    columns = ["alpha:beta"] + [
        f"E{i + 1}" for i in range(topology.size)
    ]
    rows = [
        [_ratio_label(e.alpha, e.beta)] + list(e.exposure_times)
        for e in sweep
    ]
    return TableResult(
        experiment_id="Table II",
        title=f"E-bar_i per alpha:beta ratio ({topology.name})",
        columns=columns,
        rows=rows,
        raw={"sweep": sweep, "topology": topology.name},
        notes=(
            "Shape check: exposure times grow as beta decreases "
            "(the sensor moves less)."
        ),
    )


def table3(
    topology: Optional[Topology] = None,
    runs: Optional[int] = None,
    iterations: Optional[int] = None,
    seed: int = 0,
    executor=None,
) -> TableResult:
    """Table III: adaptive vs perturbed over many runs (alpha=0, beta=1).

    The paper's headline local-optima evidence: the adaptive algorithm's
    best cost spreads widely with the random start, while the perturbed
    algorithm concentrates near the global optimum.
    """
    scale = current_scale()
    topology = topology or paper_topology(1)
    runs = runs or scale.table3_runs
    iterations = iterations or scale.search_iterations
    cost = CoverageCost(topology, CostWeights(alpha=0.0, beta=1.0))

    adaptive = [
        r.best_u_eps
        for r in run_many(
            cost, "adaptive", runs, iterations, seed=seed,
            executor=executor,
        )
    ]
    perturbed = [
        r.best_u_eps
        for r in run_many(
            cost, "perturbed", runs, iterations, seed=seed + 777,
            executor=executor,
        )
    ]
    rows = [
        ["adaptive", min(adaptive), max(adaptive),
         float(np.mean(adaptive))],
        ["perturbed", min(perturbed), max(perturbed),
         float(np.mean(perturbed))],
    ]
    return TableResult(
        experiment_id="Table III",
        title=(
            f"optimal cost over {runs} runs (alpha=0, beta=1, "
            f"{topology.name})"
        ),
        columns=["algorithm", "min", "max", "average"],
        rows=rows,
        raw={"adaptive": adaptive, "perturbed": perturbed, "runs": runs},
        notes=(
            "Shape check: the adaptive max-min spread greatly exceeds "
            "the perturbed spread; the perturbed average is lower."
        ),
    )


def table4(
    topology: Optional[Topology] = None,
    ratios: Sequence[Tuple[float, float]] = TABLE4_RATIOS,
    iterations: Optional[int] = None,
    transitions: Optional[int] = None,
    repetitions: Optional[int] = None,
    seed: int = 0,
    executor=None,
    engine: Optional[str] = None,
) -> TableResult:
    """Table IV: realized ``Delta C`` / ``E-bar`` from actual simulations.

    Optimizes each ratio, then drives the sensor simulation with the
    stabilized matrix and reports measured metrics next to the computed
    (analytic) ones.
    """
    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.sweep_iterations
    transitions = transitions or scale.sim_transitions
    repetitions = repetitions or scale.sim_repetitions

    sweep = run_weight_sweep(
        topology, ratios=ratios, iterations=iterations, seed=seed,
        executor=executor,
    )
    rows = []
    raw_runs = {}
    for entry in sweep:
        simulations = simulate_repeatedly(
            topology,
            entry.matrix,
            transitions=transitions,
            repetitions=repetitions,
            seed=seed + 13,
            executor=executor,
            engine=engine,
        )
        measured_dc = metric_band([s.delta_c for s in simulations])
        measured_e = metric_band(
            [s.e_bar_transitions for s in simulations]
        )
        label = _ratio_label(entry.alpha, entry.beta)
        raw_runs[label] = simulations
        rows.append(
            [
                label,
                entry.delta_c,
                measured_dc.mean,
                entry.e_bar,
                measured_e.mean,
            ]
        )
    return TableResult(
        experiment_id="Table IV",
        title=(
            f"computed vs simulated metrics per alpha:beta "
            f"({topology.name})"
        ),
        columns=[
            "alpha:beta", "dC computed", "dC simulated",
            "E computed", "E simulated",
        ],
        rows=rows,
        raw={"sweep": sweep, "simulations": raw_runs},
        notes=(
            "Shape check: simulated values track computed ones; beta=0 "
            "minimizes dC while E grows large."
        ),
    )
