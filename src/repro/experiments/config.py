"""Experiment scaling: CI-sized defaults vs paper-sized runs.

The paper's measurements use e.g. 200 independent optimization runs
(Table III) and per-iteration Markov chain simulations repeated ten times
(Figs. 6-8).  Running all of that takes tens of minutes; the default
scale keeps every experiment's *shape* while fitting in a CI budget.

Set the environment variable ``REPRO_PAPER_SCALE=1`` to run everything at
the paper's scale, or pass explicit parameters to any experiment
function (explicit arguments always win).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Environment variable that switches to paper-scale runs.
PAPER_SCALE_ENV = "REPRO_PAPER_SCALE"


@dataclass(frozen=True)
class ExperimentScale:
    """Run counts and iteration budgets for the whole experiment suite."""

    #: Independent runs per algorithm for the Fig. 2 CDFs.
    cdf_runs: int
    #: Independent runs per algorithm for Table III.
    table3_runs: int
    #: Iteration budget of adaptive/perturbed runs in CDF experiments.
    search_iterations: int
    #: Iteration budget for the weight-sweep (Tables I/II) optimizations.
    sweep_iterations: int
    #: Random starts per weight in the multi-start sweeps.
    sweep_random_starts: int
    #: Basic-descent iteration budget for trace figures (Figs. 3-5a).
    basic_iterations: int
    #: Basic-descent step size for trace figures.
    basic_step: float
    #: Perturbed iteration budget for trace figures (Fig. 5b).
    trace_iterations: int
    #: Markov-chain transitions per simulation run (Figs. 6-8, Table IV).
    sim_transitions: int
    #: Simulation repetitions per measured point.
    sim_repetitions: int
    #: Number of optimizer checkpoints simulated per trajectory figure.
    sim_checkpoints: int


#: Fast defaults: every experiment finishes in seconds to a few minutes.
CI_SCALE = ExperimentScale(
    cdf_runs=24,
    table3_runs=40,
    search_iterations=350,
    sweep_iterations=400,
    sweep_random_starts=2,
    basic_iterations=4000,
    basic_step=1e-5,
    trace_iterations=350,
    sim_transitions=20_000,
    sim_repetitions=5,
    sim_checkpoints=8,
)

#: The paper's scale (Table III: 200 runs; 10 simulation repetitions).
PAPER_SCALE = ExperimentScale(
    cdf_runs=100,
    table3_runs=200,
    search_iterations=800,
    sweep_iterations=1000,
    sweep_random_starts=4,
    basic_iterations=100_000,
    basic_step=1e-6,
    trace_iterations=800,
    sim_transitions=200_000,
    sim_repetitions=10,
    sim_checkpoints=12,
)


def paper_scale_requested() -> bool:
    """Whether ``REPRO_PAPER_SCALE`` requests full-scale runs."""
    value = os.environ.get(PAPER_SCALE_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no")


def current_scale() -> ExperimentScale:
    """The active scale (environment-controlled)."""
    return PAPER_SCALE if paper_scale_requested() else CI_SCALE
