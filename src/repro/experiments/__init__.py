"""Experiment harness regenerating every table and figure of the paper.

Each entry point returns a structured result
(:class:`~repro.experiments.reporting.TableResult` or
:class:`~repro.experiments.reporting.FigureResult`) whose ``render()``
prints the same rows/series the paper reports.  CI-sized parameters are
the default; set ``REPRO_PAPER_SCALE=1`` for the paper's run counts (see
:mod:`repro.experiments.config`).
"""

from repro.experiments.config import (
    CI_SCALE,
    PAPER_SCALE,
    PAPER_SCALE_ENV,
    ExperimentScale,
    current_scale,
    paper_scale_requested,
)
from repro.experiments.reporting import (
    FigureResult,
    Series,
    TableResult,
    empirical_cdf,
    format_table,
)
from repro.experiments.tables import (
    TABLE1_RATIOS,
    TABLE4_RATIOS,
    SweepEntry,
    run_weight_sweep,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.figures import (
    figure2a,
    figure2b,
    figure3,
    figure4,
    figure5a,
    figure5b,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.ablations import (
    ablation_epsilon,
    ablation_linesearch,
    ablation_noise,
    ablation_optimizer,
    ablation_step_size,
)
from repro.experiments.extensions import (
    extension_capture,
    extension_energy,
    extension_entropy,
    extension_team,
)
from repro.experiments.baselines_exp import baseline_comparison
from repro.experiments.validation import Criterion, validate_reproduction

__all__ = [
    "CI_SCALE",
    "PAPER_SCALE",
    "PAPER_SCALE_ENV",
    "ExperimentScale",
    "current_scale",
    "paper_scale_requested",
    "FigureResult",
    "Series",
    "TableResult",
    "empirical_cdf",
    "format_table",
    "TABLE1_RATIOS",
    "TABLE4_RATIOS",
    "SweepEntry",
    "run_weight_sweep",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure2a",
    "figure2b",
    "figure3",
    "figure4",
    "figure5a",
    "figure5b",
    "figure6",
    "figure7",
    "figure8",
    "ablation_epsilon",
    "ablation_linesearch",
    "ablation_noise",
    "ablation_optimizer",
    "ablation_step_size",
    "extension_capture",
    "extension_energy",
    "extension_entropy",
    "extension_team",
    "baseline_comparison",
    "Criterion",
    "validate_reproduction",
]
