"""Ablation studies of the design choices DESIGN.md calls out.

* **A1 — step-size policy**: fixed ``dt`` values (the paper's V1 knob)
  against the adaptive trisection line search (V3), measuring the cost
  reached for the same iteration budget.
* **A2 — noise and cooling**: the perturbed algorithm's ``sigma`` and
  ``k`` knobs (V4), measuring escape from local optima.
* **A3 — barrier width**: the ``epsilon`` of Eq. (9), measuring both the
  achievable cost (a wide barrier excludes good near-boundary solutions)
  and solver robustness.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.adaptive import AdaptiveOptions, optimize_adaptive
from repro.core.cost import CostWeights, CoverageCost
from repro.core.descent import BasicDescentOptions, optimize_basic
from repro.core.perturbed import PerturbedOptions, optimize_perturbed
from repro.experiments.config import current_scale
from repro.experiments.reporting import TableResult
from repro.topology.library import paper_topology
from repro.topology.model import Topology
from repro.utils.rng import spawn_generators


def ablation_step_size(
    topology: Optional[Topology] = None,
    step_sizes: Sequence[float] = (1e-6, 1e-5, 1e-4, 1e-3),
    iterations: Optional[int] = None,
    seed: int = 0,
) -> TableResult:
    """A1: fixed-step basic descent vs the adaptive line search."""
    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.search_iterations
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))

    rows = []
    for step in step_sizes:
        result = optimize_basic(
            cost,
            options=BasicDescentOptions(
                step_size=step,
                max_iterations=iterations,
                record_history=False,
            ),
        )
        rows.append(
            [f"basic dt={step:g}", result.u_eps, result.iterations,
             result.stop_reason]
        )
    # Same uniform start as the basic runs, so the comparison isolates
    # the step policy rather than the initialization.
    from repro.core.initializers import uniform_matrix

    adaptive = optimize_adaptive(
        cost,
        initial=uniform_matrix(topology.size),
        seed=seed,
        options=AdaptiveOptions(
            max_iterations=iterations, trisection_rounds=20,
            record_history=False,
        ),
    )
    rows.append(
        ["adaptive (V3)", adaptive.u_eps, adaptive.iterations,
         adaptive.stop_reason]
    )
    return TableResult(
        experiment_id="Ablation A1",
        title=f"step-size policy, same iteration budget ({topology.name})",
        columns=["policy", "U_eps", "iterations", "stop"],
        rows=rows,
        notes=(
            "Shape check: the adaptive line search reaches a lower cost "
            "than any fixed step within the budget."
        ),
    )


def ablation_noise(
    topology: Optional[Topology] = None,
    sigmas: Sequence[float] = (0.0, 0.1, 0.5, 2.0),
    cooling_ks: Sequence[float] = (100.0, 10_000.0),
    runs: int = 6,
    iterations: Optional[int] = None,
    seed: int = 0,
) -> TableResult:
    """A2: gradient-noise magnitude and cooling constant (V4 knobs).

    ``sigma = 0`` disables the gradient noise, isolating the annealed
    random-step mechanism; the paper's setting is ``k = 10000``.
    """
    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.search_iterations
    cost = CoverageCost(topology, CostWeights(alpha=0.0, beta=1.0))

    rows = []
    raw = {}
    for sigma in sigmas:
        for cooling_k in cooling_ks:
            finals = []
            for rng in spawn_generators(seed, runs):
                result = optimize_perturbed(
                    cost,
                    seed=rng,
                    options=PerturbedOptions(
                        max_iterations=iterations,
                        trisection_rounds=20,
                        sigma=sigma,
                        cooling_k=cooling_k,
                        stall_limit=iterations + 1,
                        record_history=False,
                    ),
                )
                finals.append(result.best_u_eps)
            label = f"sigma={sigma:g}, k={cooling_k:g}"
            raw[label] = finals
            rows.append(
                [label, min(finals), max(finals), float(np.mean(finals))]
            )
    return TableResult(
        experiment_id="Ablation A2",
        title=(
            f"perturbation noise and cooling over {runs} runs "
            f"(alpha=0, beta=1, {topology.name})"
        ),
        columns=["setting", "min", "max", "average"],
        rows=rows,
        raw=raw,
        notes=(
            "Shape check: moderate noise lowers the worst-case cost "
            "relative to sigma=0."
        ),
    )


def ablation_linesearch(
    topology: Optional[Topology] = None,
    decades: Sequence[int] = (0, 4, 12),
    runs: int = 4,
    iterations: Optional[int] = None,
    seed: int = 0,
) -> TableResult:
    """A4: geometric pre-sweep depth of the line search.

    ``decades = 0`` is the paper's pure conservative trisection; deeper
    sweeps probe ``bound * 10^-k`` first, resolving the tiny improving
    steps that noisy (perturbed) descent directions frequently have near
    the log-barrier (DESIGN.md section 3).  Measured with the perturbed
    algorithm on the coverage-dominant setting over several runs.
    """
    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.search_iterations
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1e-4))

    rows = []
    raw = {}
    for depth in decades:
        finals = []
        for rng in spawn_generators(seed, runs):
            result = optimize_perturbed(
                cost,
                seed=rng,
                options=PerturbedOptions(
                    max_iterations=iterations,
                    trisection_rounds=20,
                    geometric_decades=depth,
                    stall_limit=iterations + 1,
                    record_history=False,
                ),
            )
            finals.append(result.best_u_eps)
        label = f"decades={depth}"
        raw[label] = finals
        rows.append(
            [label, min(finals), max(finals), float(np.mean(finals))]
        )
    return TableResult(
        experiment_id="Ablation A4",
        title=(
            f"line-search pre-sweep depth over {runs} perturbed runs "
            f"(alpha=1, beta=1e-4, {topology.name})"
        ),
        columns=["setting", "min", "max", "average"],
        rows=rows,
        raw=raw,
        notes=(
            "Finding: with bracket refinement in place the pre-sweep "
            "is cheap insurance — averages agree within noise on the "
            "paper topologies; decades=0 is the paper's pure trisection."
        ),
    )


def ablation_epsilon(
    topology: Optional[Topology] = None,
    epsilons: Sequence[float] = (1e-2, 1e-3, 1e-4, 1e-5),
    iterations: Optional[int] = None,
    seed: int = 0,
) -> TableResult:
    """A3: barrier band width ``epsilon`` of Eq. (9).

    A wide barrier keeps iterates away from the polytope boundary where
    the slow-moving, coverage-accurate schedules live; a very narrow one
    risks numerically non-ergodic iterates.  Measured on the
    coverage-dominant setting where the boundary matters most.
    """
    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.search_iterations

    rows = []
    for epsilon in epsilons:
        cost = CoverageCost(
            topology,
            CostWeights(alpha=1.0, beta=1e-6, epsilon=epsilon),
        )
        result = optimize_perturbed(
            cost,
            seed=seed,
            options=PerturbedOptions(
                max_iterations=iterations,
                trisection_rounds=20,
                stall_limit=iterations + 1,
                record_history=False,
            ),
        )
        matrix = result.best_matrix
        rows.append(
            [f"eps={epsilon:g}", result.best_u_eps,
             cost.delta_c(matrix), float(matrix.min())]
        )
    return TableResult(
        experiment_id="Ablation A3",
        title=f"barrier width (alpha=1, beta=1e-6, {topology.name})",
        columns=["epsilon", "U_eps", "dC", "min p_ij"],
        rows=rows,
        notes=(
            "Shape check: smaller epsilon admits smaller min p_ij and "
            "lower achievable dC."
        ),
    )


def ablation_optimizer(
    topology: Optional[Topology] = None,
    betas: Sequence[float] = (1.0, 1e-4),
    iterations: Optional[int] = None,
    seed: int = 0,
) -> TableResult:
    """A5: optimizer families at equal iteration budgets.

    Compares the paper's three variants against the mirror-descent
    extension (softmax reparametrization, no barrier interaction) from
    the same uniform start.  Perturbed additionally uses its random
    start, matching how each method is meant to be run.
    """
    from repro.core.initializers import uniform_matrix
    from repro.core.mirror import MirrorOptions, optimize_mirror

    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.search_iterations

    rows = []
    for beta in betas:
        cost = CoverageCost(
            topology, CostWeights(alpha=1.0, beta=beta)
        )
        start = uniform_matrix(topology.size)
        basic = optimize_basic(
            cost, initial=start,
            options=BasicDescentOptions(
                step_size=1e-5, max_iterations=iterations,
                record_history=False,
            ),
        )
        adaptive = optimize_adaptive(
            cost, initial=start, seed=seed,
            options=AdaptiveOptions(
                max_iterations=iterations, trisection_rounds=20,
                record_history=False,
            ),
        )
        perturbed = optimize_perturbed(
            cost, seed=seed,
            options=PerturbedOptions(
                max_iterations=iterations, trisection_rounds=20,
                stall_limit=iterations + 1, record_history=False,
            ),
        )
        mirror = optimize_mirror(
            cost, initial=start,
            options=MirrorOptions(
                max_iterations=iterations, record_history=False,
            ),
        )
        for label, result in (
            ("basic (V1)", basic),
            ("adaptive (V3)", adaptive),
            ("perturbed (V4)", perturbed),
            ("mirror (ext.)", mirror),
        ):
            rows.append(
                [f"beta={beta:g}", label, result.best_u_eps,
                 result.stop_reason]
            )
    return TableResult(
        experiment_id="Ablation A5",
        title=(
            f"optimizer families at equal budgets ({topology.name})"
        ),
        columns=["setting", "optimizer", "U_eps", "stop"],
        rows=rows,
        notes=(
            "Finding: the softmax reparametrization is competitive with "
            "(and on coverage-dominant weightings often better than) "
            "the projection+barrier formulation, at the cost of leaving "
            "the paper's framework."
        ),
    )
