"""Reproduction of the paper's Figures 2-8.

Each function returns a :class:`~repro.experiments.reporting.FigureResult`
holding the exact series the corresponding figure plots.

* Fig. 2(a,b) — CDFs of the achieved cost ``U_eps`` over many runs,
  adaptive vs perturbed, for ``alpha=0, beta=1`` and ``alpha=1, beta=1``
  (Topology 1).
* Fig. 3 — basic-algorithm cost traces for several ``(alpha, beta)``
  (Topology 3).
* Fig. 4 — basic-algorithm cost trace, exposure-only (Topology 1).
* Fig. 5(a,b) — basic trace; perturbed traces from different random
  initializations (``alpha=1, beta=0``, Topology 2).
* Fig. 6/7 — simulated vs computed ``Delta C`` and ``E-bar`` along the
  optimization trajectory (Topology 2 / Topology 4, ``alpha=1, beta=0``).
* Fig. 8 — same plus the overall cost ``U`` (``alpha=1, beta=1e-4``,
  Topology 1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.cost import CostWeights, CoverageCost
from repro.core.descent import BasicDescentOptions, optimize_basic
from repro.core.perturbed import PerturbedOptions, optimize_perturbed
from repro.experiments.config import current_scale
from repro.experiments.reporting import FigureResult, Series, empirical_cdf
from repro.experiments.runner import (
    metric_band,
    run_many,
    simulate_repeatedly,
)
from repro.topology.library import paper_topology
from repro.topology.model import Topology
from repro.utils.rng import spawn_generators


def _cdf_figure(
    experiment_id: str,
    alpha: float,
    beta: float,
    topology: Optional[Topology],
    runs: Optional[int],
    iterations: Optional[int],
    seed: int,
    executor=None,
) -> FigureResult:
    scale = current_scale()
    topology = topology or paper_topology(1)
    runs = runs or scale.cdf_runs
    iterations = iterations or scale.search_iterations
    cost = CoverageCost(topology, CostWeights(alpha=alpha, beta=beta))

    adaptive = [
        r.best_u_eps
        for r in run_many(
            cost, "adaptive", runs, iterations, seed=seed,
            executor=executor,
        )
    ]
    perturbed = [
        r.best_u_eps
        for r in run_many(
            cost, "perturbed", runs, iterations, seed=seed + 999,
            executor=executor,
        )
    ]
    series = []
    for label, values in (("adaptive", adaptive), ("perturbed", perturbed)):
        x, y = empirical_cdf(values)
        series.append(Series(label=label, x=x, y=y))
    best = min(min(adaptive), min(perturbed))
    trapped = float(
        np.mean(np.asarray(adaptive) > best * 1.02 + 1e-9)
    )
    return FigureResult(
        experiment_id=experiment_id,
        title=(
            f"CDF of achieved U_eps, alpha={alpha:g}, beta={beta:g} "
            f"({topology.name}, {runs} runs)"
        ),
        x_label="achieved cost U_eps",
        y_label="CDF",
        series=series,
        raw={
            "adaptive": adaptive,
            "perturbed": perturbed,
            "global_best": best,
            "adaptive_trapped_fraction": trapped,
        },
        notes=(
            f"Fraction of adaptive runs stuck above the global best: "
            f"{trapped:.2f} (paper reports > 0.6)."
        ),
    )


def figure2a(
    topology: Optional[Topology] = None,
    runs: Optional[int] = None,
    iterations: Optional[int] = None,
    seed: int = 0,
    executor=None,
) -> FigureResult:
    """Fig. 2(a): CDFs for the exposure-only cost (alpha=0, beta=1)."""
    return _cdf_figure(
        "Figure 2a", 0.0, 1.0, topology, runs, iterations, seed,
        executor=executor,
    )


def figure2b(
    topology: Optional[Topology] = None,
    runs: Optional[int] = None,
    iterations: Optional[int] = None,
    seed: int = 0,
    executor=None,
) -> FigureResult:
    """Fig. 2(b): CDFs for the combined cost (alpha=1, beta=1)."""
    return _cdf_figure(
        "Figure 2b", 1.0, 1.0, topology, runs, iterations, seed,
        executor=executor,
    )


def _basic_trace(
    cost: CoverageCost,
    iterations: int,
    step: float,
    checkpoint_every: int = 0,
):
    return optimize_basic(
        cost,
        options=BasicDescentOptions(
            step_size=step,
            max_iterations=iterations,
            checkpoint_every=checkpoint_every,
            # Let the trace run its full length for the figures.
            rtol=0.0,
            patience=iterations + 1,
        ),
    )


def figure3(
    topology: Optional[Topology] = None,
    ratios: Tuple[Tuple[float, float], ...] = (
        (1.0, 1.0), (1.0, 1e-2), (1.0, 1e-4),
    ),
    iterations: Optional[int] = None,
    step: Optional[float] = None,
) -> FigureResult:
    """Fig. 3: basic-algorithm cost traces for several weightings."""
    scale = current_scale()
    topology = topology or paper_topology(3)
    iterations = iterations or scale.basic_iterations
    step = step or scale.basic_step
    series = []
    for alpha, beta in ratios:
        cost = CoverageCost(topology, CostWeights(alpha=alpha, beta=beta))
        result = _basic_trace(cost, iterations, step)
        trace = result.cost_trace()
        series.append(
            Series(
                label=f"alpha={alpha:g}, beta={beta:g}",
                x=np.arange(1, trace.size + 1, dtype=float),
                y=trace,
            )
        )
    return FigureResult(
        experiment_id="Figure 3",
        title=f"basic algorithm: U vs iteration ({topology.name})",
        x_label="iteration",
        y_label="cost U_eps",
        series=series,
        notes="Shape check: monotone-ish decay with diminishing returns.",
    )


def figure4(
    topology: Optional[Topology] = None,
    iterations: Optional[int] = None,
    step: Optional[float] = None,
) -> FigureResult:
    """Fig. 4: basic-algorithm trace for the exposure-only cost."""
    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.basic_iterations
    step = step or scale.basic_step
    cost = CoverageCost(topology, CostWeights(alpha=0.0, beta=1.0))
    result = _basic_trace(cost, iterations, step)
    trace = result.cost_trace()
    return FigureResult(
        experiment_id="Figure 4",
        title=(
            f"basic algorithm: U vs iteration (alpha=0, beta=1, "
            f"{topology.name})"
        ),
        x_label="iteration",
        y_label="cost U_eps",
        series=[
            Series(
                label="basic",
                x=np.arange(1, trace.size + 1, dtype=float),
                y=trace,
            )
        ],
    )


def figure5a(
    topology: Optional[Topology] = None,
    iterations: Optional[int] = None,
    step: Optional[float] = None,
) -> FigureResult:
    """Fig. 5(a): basic-algorithm trace (alpha=1, beta=0, Topology 2)."""
    scale = current_scale()
    topology = topology or paper_topology(2)
    iterations = iterations or scale.basic_iterations
    step = step or scale.basic_step
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=0.0))
    result = _basic_trace(cost, iterations, step)
    trace = result.cost_trace()
    return FigureResult(
        experiment_id="Figure 5a",
        title=(
            f"basic algorithm: U vs iteration (alpha=1, beta=0, "
            f"{topology.name})"
        ),
        x_label="iteration",
        y_label="cost U_eps",
        series=[
            Series(
                label="basic",
                x=np.arange(1, trace.size + 1, dtype=float),
                y=trace,
            )
        ],
    )


def figure5b(
    topology: Optional[Topology] = None,
    seeds: int = 3,
    iterations: Optional[int] = None,
    seed: int = 0,
) -> FigureResult:
    """Fig. 5(b): perturbed traces from different random initial matrices.

    Shape check: runs started from different random seeds converge to the
    same stable cost (the perturbed algorithm is not trapped).
    """
    scale = current_scale()
    topology = topology or paper_topology(2)
    iterations = iterations or scale.trace_iterations
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=0.0))
    series = []
    finals = []
    for index, rng in enumerate(spawn_generators(seed, seeds)):
        result = optimize_perturbed(
            cost,
            seed=rng,
            options=PerturbedOptions(
                max_iterations=iterations,
                trisection_rounds=20,
                stall_limit=iterations + 1,
            ),
        )
        # Plot the best-so-far envelope: the perturbed trajectory itself
        # deliberately wanders uphill.
        trace = np.minimum.accumulate(result.cost_trace())
        finals.append(result.best_u_eps)
        series.append(
            Series(
                label=f"seed {index}",
                x=np.arange(1, trace.size + 1, dtype=float),
                y=trace,
            )
        )
    spread = max(finals) - min(finals)
    return FigureResult(
        experiment_id="Figure 5b",
        title=(
            f"perturbed algorithm from {seeds} random starts "
            f"(alpha=1, beta=0, {topology.name})"
        ),
        x_label="iteration",
        y_label="best cost so far",
        series=series,
        raw={"finals": finals, "spread": spread},
        notes=f"Final-cost spread across seeds: {spread:.3g}.",
    )


def _trajectory_figure(
    experiment_id: str,
    topology: Topology,
    alpha: float,
    beta: float,
    iterations: Optional[int],
    step: Optional[float],
    transitions: Optional[int],
    repetitions: Optional[int],
    checkpoints: Optional[int],
    seed: int,
    include_cost: bool,
    engine: Optional[str] = None,
) -> FigureResult:
    """Shared engine of Figs. 6-8: simulate matrices along a trajectory."""
    scale = current_scale()
    iterations = iterations or scale.basic_iterations
    step = step or scale.basic_step
    transitions = transitions or scale.sim_transitions
    repetitions = repetitions or scale.sim_repetitions
    checkpoints = checkpoints or scale.sim_checkpoints

    cost = CoverageCost(topology, CostWeights(alpha=alpha, beta=beta))
    checkpoint_every = max(iterations // checkpoints, 1)
    result = _basic_trace(
        cost, iterations, step, checkpoint_every=checkpoint_every
    )

    xs: List[float] = []
    computed_dc: List[float] = []
    computed_e: List[float] = []
    computed_u: List[float] = []
    sim_dc, sim_dc_lo, sim_dc_hi = [], [], []
    sim_e, sim_e_lo, sim_e_hi = [], [], []
    sim_u: List[float] = []
    for iteration, matrix in result.checkpoints:
        breakdown = cost.evaluate(matrix)
        xs.append(float(iteration))
        computed_dc.append(breakdown.delta_c)
        computed_e.append(breakdown.e_bar)
        computed_u.append(breakdown.u)
        simulations = simulate_repeatedly(
            topology, matrix, transitions, repetitions,
            seed=seed + iteration, engine=engine,
        )
        band_dc = metric_band([s.delta_c for s in simulations])
        band_e = metric_band([s.e_bar_transitions for s in simulations])
        sim_dc.append(band_dc.mean)
        sim_dc_lo.append(band_dc.p25)
        sim_dc_hi.append(band_dc.p75)
        sim_e.append(band_e.mean)
        sim_e_lo.append(band_e.p25)
        sim_e_hi.append(band_e.p75)
        sim_u.append(
            0.5 * alpha * band_dc.mean + 0.5 * beta * band_e.mean**2
        )

    x = np.asarray(xs)
    series = [
        Series("dC computed", x, np.asarray(computed_dc)),
        Series(
            "dC simulated", x, np.asarray(sim_dc),
            y_low=np.asarray(sim_dc_lo), y_high=np.asarray(sim_dc_hi),
        ),
        Series("E computed", x, np.asarray(computed_e)),
        Series(
            "E simulated", x, np.asarray(sim_e),
            y_low=np.asarray(sim_e_lo), y_high=np.asarray(sim_e_hi),
        ),
    ]
    if include_cost:
        series.append(Series("U computed", x, np.asarray(computed_u)))
        series.append(Series("U simulated", x, np.asarray(sim_u)))
    return FigureResult(
        experiment_id=experiment_id,
        title=(
            f"simulated vs computed metrics along the trajectory "
            f"(alpha={alpha:g}, beta={beta:g}, {topology.name})"
        ),
        x_label="iteration",
        y_label="dC / E-bar" + (" / U" if include_cost else ""),
        series=series,
        raw={"result": result},
        notes=(
            "Shape check: simulated series track the computed ones; the "
            "match of U is exact for beta=0 and close for beta>0."
        ),
    )


def figure6(
    topology: Optional[Topology] = None,
    iterations: Optional[int] = None,
    step: Optional[float] = None,
    transitions: Optional[int] = None,
    repetitions: Optional[int] = None,
    checkpoints: Optional[int] = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> FigureResult:
    """Fig. 6: simulated vs computed dC and E (alpha=1, beta=0, Top. 2)."""
    return _trajectory_figure(
        "Figure 6", topology or paper_topology(2), 1.0, 0.0,
        iterations, step, transitions, repetitions, checkpoints, seed,
        include_cost=False, engine=engine,
    )


def figure7(
    topology: Optional[Topology] = None,
    iterations: Optional[int] = None,
    step: Optional[float] = None,
    transitions: Optional[int] = None,
    repetitions: Optional[int] = None,
    checkpoints: Optional[int] = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> FigureResult:
    """Fig. 7: simulated vs computed dC and E (alpha=1, beta=0, Top. 4)."""
    return _trajectory_figure(
        "Figure 7", topology or paper_topology(4), 1.0, 0.0,
        iterations, step, transitions, repetitions, checkpoints, seed,
        include_cost=False, engine=engine,
    )


def figure8(
    topology: Optional[Topology] = None,
    iterations: Optional[int] = None,
    step: Optional[float] = None,
    transitions: Optional[int] = None,
    repetitions: Optional[int] = None,
    checkpoints: Optional[int] = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> FigureResult:
    """Fig. 8: dC, E, and U (alpha=1, beta=1e-4, Topology 1)."""
    return _trajectory_figure(
        "Figure 8", topology or paper_topology(1), 1.0, 1e-4,
        iterations, step, transitions, repetitions, checkpoints, seed,
        include_cost=True, engine=engine,
    )
