"""One-command reproduction check.

Runs scaled-down versions of the key experiments and evaluates the
acceptance criteria of DESIGN.md section 6, returning a PASS/FAIL table.
This is the "does my installation reproduce the paper's shapes?" command
for downstream users (`python -m repro experiment validate`); the full
benchmark suite measures the same things at proper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.cost import CostWeights, CoverageCost
from repro.experiments.reporting import TableResult
from repro.experiments.runner import run_many, simulate_repeatedly
from repro.experiments.tables import run_weight_sweep
from repro.topology.library import paper_topology


@dataclass
class Criterion:
    """One acceptance criterion and its outcome."""

    name: str
    passed: bool
    detail: str


def _check_tradeoff(iterations: int, seed: int) -> List[Criterion]:
    """Table I/II shape: beta down -> coverage to Phi, exposure up."""
    topology = paper_topology(3)
    sweep = run_weight_sweep(
        topology,
        ratios=((1.0, 1.0), (1.0, 1e-4), (1.0, 0.0)),
        iterations=iterations,
        random_starts=1,
        seed=seed,
    )
    phi = topology.target_shares
    errors = [
        float(np.abs(entry.coverage_shares - phi).max())
        for entry in sweep
    ]
    exposures = [entry.e_bar for entry in sweep]
    return [
        Criterion(
            name="coverage approaches target as beta decreases",
            passed=errors[-1] < errors[0] and errors[-1] < 0.05,
            detail=f"max |C-Phi|: {errors[0]:.3g} -> {errors[-1]:.3g}",
        ),
        Criterion(
            name="exposure grows as beta decreases",
            passed=exposures[-1] > 3.0 * exposures[0],
            detail=f"E-bar: {exposures[0]:.3g} -> {exposures[-1]:.3g}",
        ),
    ]


def _check_local_optima(iterations: int, runs: int,
                        seed: int) -> List[Criterion]:
    """Fig. 2 / Table III shape: perturbed beats adaptive."""
    topology = paper_topology(1)
    cost = CoverageCost(topology, CostWeights(alpha=0.0, beta=1.0))
    adaptive = [
        r.best_u_eps
        for r in run_many(cost, "adaptive", runs, iterations, seed=seed)
    ]
    perturbed = [
        r.best_u_eps
        for r in run_many(
            cost, "perturbed", runs, iterations, seed=seed + 99
        )
    ]
    spread_a = max(adaptive) - min(adaptive)
    spread_p = max(perturbed) - min(perturbed)
    return [
        Criterion(
            name="perturbed average beats adaptive average",
            passed=float(np.mean(perturbed)) <= float(np.mean(adaptive)),
            detail=(
                f"avg perturbed {np.mean(perturbed):.4g} vs adaptive "
                f"{np.mean(adaptive):.4g}"
            ),
        ),
        Criterion(
            name="perturbed spread tighter than adaptive spread",
            passed=spread_p <= spread_a,
            detail=f"spread {spread_p:.3g} vs {spread_a:.3g}",
        ),
    ]


def _check_simulation_match(iterations: int, seed: int) -> List[Criterion]:
    """Figs. 6-8 shape: simulated metrics track computed ones."""
    from repro.core.perturbed import PerturbedOptions, optimize_perturbed

    topology = paper_topology(2)
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=0.0))
    result = optimize_perturbed(
        cost, seed=seed,
        options=PerturbedOptions(
            max_iterations=iterations, trisection_rounds=15,
            stall_limit=iterations + 1, record_history=False,
        ),
    )
    matrix = result.best_matrix
    sims = simulate_repeatedly(
        topology, matrix, transitions=20_000, repetitions=3, seed=seed
    )
    simulated_dc = float(np.mean([s.delta_c for s in sims]))
    simulated_e = float(np.mean([s.e_bar_transitions for s in sims]))
    computed_dc = cost.delta_c(matrix)
    computed_e = cost.e_bar(matrix)
    close_dc = abs(simulated_dc - computed_dc) \
        <= 0.15 * max(computed_dc, 0.1)
    close_e = abs(simulated_e - computed_e) \
        <= 0.15 * max(computed_e, 0.1)
    return [
        Criterion(
            name="simulated dC matches computed dC",
            passed=close_dc,
            detail=f"{simulated_dc:.4g} vs {computed_dc:.4g}",
        ),
        Criterion(
            name="simulated E-bar matches computed E-bar",
            passed=close_e,
            detail=f"{simulated_e:.4g} vs {computed_e:.4g}",
        ),
    ]


def _check_engine_equivalence(seed: int) -> List[Criterion]:
    """Vectorized and loop engines agree bit-for-bit on a real topology."""
    from dataclasses import fields

    from repro.simulation.engine import SimulationOptions, simulate_schedule

    topology = paper_topology(2)
    matrix = np.full((topology.size, topology.size), 1.0 / topology.size)
    results = {
        engine: simulate_schedule(
            topology, matrix, transitions=2_000, seed=seed,
            options=SimulationOptions(
                warmup=100, record_path=True, engine=engine
            ),
        )
        for engine in ("loop", "vectorized")
    }
    mismatched = []
    for field in fields(results["loop"]):
        loop_value = np.asarray(getattr(results["loop"], field.name))
        vec_value = np.asarray(getattr(results["vectorized"], field.name))
        equal_nan = loop_value.dtype.kind == "f"
        if not np.array_equal(loop_value, vec_value, equal_nan=equal_nan):
            mismatched.append(field.name)
    return [
        Criterion(
            name="vectorized engine matches loop engine bit-for-bit",
            passed=not mismatched,
            detail=(
                "all SimulationResult fields identical"
                if not mismatched
                else f"mismatched fields: {', '.join(mismatched)}"
            ),
        )
    ]


def _check_gradient(seed: int) -> List[Criterion]:
    """Analytic Eq. (10) gradient vs finite differences."""
    from repro.core.gradient import directional_derivative
    from repro.core.state import ChainState

    rng = np.random.default_rng(seed)
    topology = paper_topology(1)
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))
    matrix = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=4)
    matrix /= matrix.sum(axis=1, keepdims=True)
    state = ChainState.from_matrix(matrix)
    worst = 0.0
    h = 1e-7
    for _ in range(3):
        direction = rng.normal(size=(4, 4))
        direction -= direction.mean(axis=1, keepdims=True)
        numeric = (
            cost.value(matrix + h * direction)
            - cost.value(matrix - h * direction)
        ) / (2 * h)
        analytic = directional_derivative(state, cost.terms, direction)
        worst = max(
            worst, abs(numeric - analytic) / max(1.0, abs(numeric))
        )
    return [
        Criterion(
            name="Eq. (10) gradient matches finite differences",
            passed=worst < 1e-5,
            detail=f"worst relative error {worst:.2e}",
        )
    ]


def validate_reproduction(
    iterations: int = 120,
    runs: int = 6,
    seed: int = 0,
    checks: Optional[List[Callable]] = None,
) -> TableResult:
    """Run the acceptance-criteria suite and return a PASS/FAIL table.

    The default budget finishes in about a minute; the criteria are the
    same shapes the full benchmarks measure (DESIGN.md section 6).
    """
    criteria: List[Criterion] = []
    criteria.extend(_check_gradient(seed))
    criteria.extend(_check_engine_equivalence(seed))
    criteria.extend(_check_tradeoff(iterations, seed))
    criteria.extend(_check_local_optima(iterations, runs, seed))
    criteria.extend(_check_simulation_match(iterations, seed))
    if checks:
        for check in checks:
            criteria.extend(check())
    rows = [
        [c.name, "PASS" if c.passed else "FAIL", c.detail]
        for c in criteria
    ]
    passed = sum(c.passed for c in criteria)
    return TableResult(
        experiment_id="Validation",
        title="reproduction acceptance criteria (DESIGN.md section 6)",
        columns=["criterion", "status", "detail"],
        rows=rows,
        raw={"criteria": criteria},
        notes=f"{passed}/{len(criteria)} criteria passed.",
    )
