"""Section VII extensions: energy cost and schedule entropy.

The paper sketches how to fold two further objectives into the cost; we
implement both (see :class:`repro.core.terms.EnergyTerm` and
:class:`repro.core.terms.EntropyTerm`) and these experiments demonstrate
the promised behavior:

* **E1 — energy**: penalizing ``(D - gamma)^2`` steers the mean travel
  distance per transition ``D`` toward the prescribed ``gamma``.
* **E2 — entropy**: subtracting ``w H`` raises the schedule's entropy
  rate toward the ``ln M`` bound while giving up little coverage cost,
  making the schedule harder for an adversary to predict.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.cost import CostWeights, CoverageCost
from repro.core.perturbed import PerturbedOptions, optimize_perturbed
from repro.core.terms import EnergyTerm, EntropyTerm
from repro.core.state import ChainState
from repro.experiments.config import current_scale
from repro.experiments.reporting import TableResult
from repro.topology.library import paper_topology
from repro.topology.model import Topology


def extension_energy(
    topology: Optional[Topology] = None,
    gammas: Sequence[float] = (10.0, 30.0, 60.0),
    energy_weight: float = 0.01,
    iterations: Optional[int] = None,
    seed: int = 0,
) -> TableResult:
    """E1: the mean travel distance tracks the prescribed ``gamma``."""
    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.search_iterations

    probe = EnergyTerm(topology.distances, weight=1.0)
    rows = []
    # Reference: no energy term at all.
    base_cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1e-3))
    base = optimize_perturbed(
        base_cost,
        seed=seed,
        options=PerturbedOptions(
            max_iterations=iterations, trisection_rounds=20,
            stall_limit=iterations + 1, record_history=False,
        ),
    )
    base_travel = probe.mean_travel(
        ChainState.from_matrix(base.best_matrix)
    )
    rows.append(["(no energy term)", "-", base_travel, base.best_u_eps])
    for gamma in gammas:
        cost = CoverageCost(
            topology,
            CostWeights(
                alpha=1.0, beta=1e-3,
                energy_weight=energy_weight, energy_target=gamma,
            ),
        )
        result = optimize_perturbed(
            cost,
            seed=seed,
            options=PerturbedOptions(
                max_iterations=iterations, trisection_rounds=20,
                stall_limit=iterations + 1, record_history=False,
            ),
        )
        travel = probe.mean_travel(
            ChainState.from_matrix(result.best_matrix)
        )
        rows.append(
            [f"w={energy_weight:g}", gamma, travel, result.best_u_eps]
        )
    return TableResult(
        experiment_id="Extension E1",
        title=f"energy objective: D tracks gamma ({topology.name})",
        columns=["setting", "gamma", "achieved D (m)", "U_eps"],
        rows=rows,
        notes=(
            "Shape check: achieved mean travel D moves toward the "
            "prescribed gamma as the energy term is enabled."
        ),
    )


def extension_entropy(
    topology: Optional[Topology] = None,
    weights: Sequence[float] = (0.0, 0.5, 2.0, 8.0),
    iterations: Optional[int] = None,
    seed: int = 0,
) -> TableResult:
    """E2: entropy regularization raises the schedule's entropy rate."""
    import numpy as np

    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.search_iterations

    probe = EntropyTerm(weight=1.0)
    rows = []
    for weight in weights:
        cost = CoverageCost(
            topology,
            CostWeights(alpha=1.0, beta=1e-3, entropy_weight=weight),
        )
        result = optimize_perturbed(
            cost,
            seed=seed,
            options=PerturbedOptions(
                max_iterations=iterations, trisection_rounds=20,
                stall_limit=iterations + 1, record_history=False,
            ),
        )
        state = ChainState.from_matrix(result.best_matrix)
        entropy = probe.entropy(state)
        metrics = CoverageCost(
            topology, CostWeights(alpha=1.0, beta=1.0)
        )
        rows.append(
            [f"w={weight:g}", entropy, float(np.log(topology.size)),
             metrics.delta_c(state)]
        )
    return TableResult(
        experiment_id="Extension E2",
        title=f"entropy regularization ({topology.name})",
        columns=["setting", "entropy rate H", "ln M bound", "dC"],
        rows=rows,
        notes=(
            "Shape check: H increases with the entropy weight, trading "
            "off against coverage accuracy."
        ),
    )


def extension_team(
    topology: Optional[Topology] = None,
    team_sizes: Sequence[int] = (1, 2, 3, 5),
    horizon: Optional[float] = None,
    iterations: Optional[int] = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> TableResult:
    """E3: sensor teams — measured vs. predicted scaling.

    Optimizes one single-sensor schedule, then simulates homogeneous
    teams of each size and compares the measured union coverage and mean
    exposure gap against the independence approximations of
    :mod:`repro.multisensor.analytic`.  ``engine`` picks the team
    simulation implementation (``"vectorized"``/``"loop"``; ``None``
    uses the default) — both give bit-identical results.
    """
    import numpy as np

    from repro.multisensor import (
        simulate_team,
        team_coverage_approximation,
        team_exposure_approximation,
    )

    scale = current_scale()
    topology = topology or paper_topology(2)
    iterations = iterations or scale.search_iterations
    if horizon is None:
        horizon = float(scale.sim_transitions) * 5.0

    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))
    matrix = optimize_perturbed(
        cost, seed=seed,
        options=PerturbedOptions(
            max_iterations=iterations, trisection_rounds=20,
            stall_limit=iterations + 1, record_history=False,
        ),
    ).best_matrix

    if engine is None:
        engine = "vectorized"
    solo = simulate_team(
        topology, [matrix], horizon=horizon, seed=seed + 1,
        engine=engine,
    )
    rows = []
    for size in team_sizes:
        team = simulate_team(
            topology, [matrix] * size, horizon=horizon, seed=seed + 2,
            engine=engine,
        )
        predicted_cov = team_coverage_approximation(
            np.tile(solo.coverage_shares, (size, 1))
        ).mean()
        predicted_gap = np.nanmean(
            team_exposure_approximation(
                np.tile(solo.exposure_mean, (size, 1))
            )
        )
        rows.append(
            [
                size,
                float(team.coverage_shares.mean()),
                float(predicted_cov),
                float(np.nanmean(team.exposure_mean)),
                float(predicted_gap),
            ]
        )
    return TableResult(
        experiment_id="Extension E3",
        title=f"sensor-team scaling ({topology.name})",
        columns=[
            "K", "coverage", "coverage pred.",
            "mean gap (s)", "gap pred.",
        ],
        rows=rows,
        notes=(
            "Shape check: coverage composes as 1-(1-c)^K and the mean "
            "gap shrinks roughly harmonically, both tracked by the "
            "independence approximations."
        ),
    )


def extension_capture(
    topology: Optional[Topology] = None,
    betas: Sequence[float] = (1.0, 1e-2, 1e-4, 1e-6),
    lifetime: float = 60.0,
    rate: float = 0.002,
    horizon: Optional[float] = None,
    iterations: Optional[int] = None,
    seed: int = 0,
) -> TableResult:
    """E4: event capture vs. the exposure weight ``beta``.

    The paper's exposure metric exists to bound how long incidents go
    undetected (Section I).  This experiment quantifies that: Poisson
    incidents with a finite detectability ``lifetime`` are planted at the
    PoIs, and the capture fraction of the optimized schedule is measured
    as ``beta`` decreases — schedules that tolerate long exposures
    measurably miss more short-lived events.
    """
    import numpy as np

    from repro.simulation.capture import (
        capture_probability_approximation,
        simulate_event_capture,
    )

    scale = current_scale()
    topology = topology or paper_topology(1)
    iterations = iterations or scale.search_iterations
    if horizon is None:
        horizon = float(scale.sim_transitions) * 10.0

    rows = []
    previous = None
    for beta in betas:
        cost = CoverageCost(
            topology, CostWeights(alpha=1.0, beta=beta)
        )
        result = optimize_perturbed(
            cost, initial=previous, seed=seed,
            options=PerturbedOptions(
                max_iterations=iterations, trisection_rounds=20,
                stall_limit=iterations + 1, record_history=False,
            ),
        )
        previous = result.best_matrix
        capture = simulate_event_capture(
            topology, result.best_matrix, horizon=horizon,
            rates=rate, lifetime=lifetime, seed=seed + 5,
        )
        approx = capture_probability_approximation(
            capture.coverage_shares, capture.mean_gaps, lifetime
        )
        rows.append(
            [
                f"beta={beta:g}",
                float(capture.overall_capture),
                float(np.nanmean(approx)),
                cost.e_bar(result.best_matrix),
            ]
        )
    return TableResult(
        experiment_id="Extension E4",
        title=(
            f"event capture vs beta (lifetime {lifetime:g}s, "
            f"{topology.name})"
        ),
        columns=["setting", "capture", "capture pred.", "E-bar"],
        rows=rows,
        notes=(
            "Shape check: capture of short-lived events falls as beta "
            "decreases (exposure grows); the stationary approximation "
            "tracks the measurement."
        ),
    )
