"""Plain-text rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def format_value(value, precision: int = 4) -> str:
    """Render one cell: floats compactly, everything else via ``str``."""
    if isinstance(value, (float, np.floating)):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    columns: Sequence[str],
    rows: Sequence[Sequence],
    precision: int = 4,
) -> str:
    """Render an aligned ASCII table."""
    rendered = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(columns[i])), *(len(r[i]) for r in rendered))
        if rendered else len(str(columns[i]))
        for i in range(len(columns))
    ]
    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    header = line(columns)
    rule = "-" * len(header)
    body = "\n".join(line(r) for r in rendered)
    return f"{header}\n{rule}\n{body}" if rendered else f"{header}\n{rule}"


@dataclass
class TableResult:
    """A reproduced paper table: columns, rows, and raw arrays."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List]
    raw: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def render(self, precision: int = 4) -> str:
        """Render the full table with its title and notes."""
        text = (
            f"== {self.experiment_id}: {self.title} ==\n"
            + format_table(self.columns, self.rows, precision)
        )
        if self.notes:
            text += f"\n{self.notes}"
        return text


@dataclass
class Series:
    """One curve of a figure: x values, y values, optional error band."""

    label: str
    x: np.ndarray
    y: np.ndarray
    y_low: Optional[np.ndarray] = None
    y_high: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.shape != self.y.shape:
            raise ValueError(
                f"x and y must have matching shapes, got {self.x.shape} "
                f"vs {self.y.shape}"
            )


@dataclass
class FigureResult:
    """A reproduced paper figure: a bundle of labeled series."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    raw: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def render(self, max_points: int = 12, precision: int = 4) -> str:
        """Render each series as a downsampled (x, y) listing."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"   x = {self.x_label}, y = {self.y_label}",
        ]
        for series in self.series:
            indices = _downsample_indices(series.x.size, max_points)
            points = ", ".join(
                f"({format_value(series.x[i], 3)}, "
                f"{format_value(series.y[i], precision)})"
                for i in indices
            )
            parts.append(f"   {series.label}: {points}")
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def _downsample_indices(size: int, max_points: int) -> np.ndarray:
    """Indices of at most ``max_points`` roughly log-spaced samples."""
    if size <= 0:
        return np.array([], dtype=int)
    if size <= max_points:
        return np.arange(size)
    # Log spacing shows both the fast early decay and the tail.
    raw = np.unique(
        np.round(
            np.logspace(0, np.log10(size), max_points)
        ).astype(int) - 1
    )
    return np.clip(raw, 0, size - 1)


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted values, cumulative probabilities)``."""
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        return values, values
    probabilities = np.arange(1, values.size + 1) / values.size
    return values, probabilities
