"""Shared drivers for multi-run experiments.

Everything the per-table/per-figure code has in common: running an
algorithm across many independent seeds, optimizing one weight setting
with the multi-start portfolio, and simulating a matrix repeatedly to get
percentile bands.

All three drivers fan out over independent tasks and accept an
``executor`` argument (see :mod:`repro.exec`): ``None`` uses the ambient
default installed by :func:`repro.exec.using_executor` (how the CLI's
``--jobs`` flag reaches here), a backend name (``"serial"``,
``"thread"``, ``"process"``) constructs one, and an
:class:`~repro.exec.Executor` instance is used as-is.  Each task's
randomness comes from its own pre-spawned stream, so results are
bit-identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.api import OPTIMIZER_REGISTRY, optimize
from repro.core.cost import CostWeights, CoverageCost
from repro.core.perturbed import PerturbedOptions
from repro.core.result import OptimizationResult
from repro.exec import resolve_executor
from repro.simulation.engine import SimulationOptions, simulate_schedule
from repro.topology.model import Topology
from repro.utils.rng import spawn_generators


def _run_many_algorithms() -> List[str]:
    """Registry methods ``run_many`` accepts: every seeded single-start
    variant (multi-start has its own driver and draws its own portfolio)."""
    return sorted(
        name for name, spec in OPTIMIZER_REGISTRY.items()
        if spec.accepts_seed and name != "multistart"
    )


def _run_one(task) -> OptimizationResult:
    """One ``run_many`` task; module-level so it pickles for processes."""
    algorithm, cost, iterations, trisection_rounds, rng = task
    spec = OPTIMIZER_REGISTRY[algorithm]
    fields = set(spec.options_class.__dataclass_fields__)
    options = {
        "max_iterations": iterations,
        "record_history": False,
    }
    if "trisection_rounds" in fields:
        options["trisection_rounds"] = trisection_rounds
    if "stall_limit" in fields:
        options["stall_limit"] = max(iterations, 1)
    return optimize(cost, method=algorithm, seed=rng, options=options)


def run_many(
    cost: CoverageCost,
    algorithm: str,
    runs: int,
    iterations: int,
    seed: int = 0,
    trisection_rounds: int = 20,
    executor=None,
    transport=None,
) -> List[OptimizationResult]:
    """Run ``algorithm`` ``runs`` times with independent seeds.

    ``algorithm`` may be any seeded single-start registry method
    (``"adaptive"``, ``"mirror"``, ``"perturbed"``, ...); options that
    the method does not declare — e.g. ``trisection_rounds`` for
    ``"mirror"`` — are simply not passed.  Each run draws an
    independent random initial matrix (the paper's V2 recipe) from an
    independent RNG stream, so the result list does not depend on which
    backend executes the runs.  History recording is off: multi-run
    experiments only need the achieved costs.  ``transport`` selects
    the process backend's payload transport when ``executor`` names a
    backend (see :mod:`repro.exec.shm`).
    """
    valid = _run_many_algorithms()
    if algorithm not in valid:
        raise ValueError(
            f"algorithm must be one of {valid}, got {algorithm!r}"
        )
    tasks = [
        (algorithm, cost, iterations, trisection_rounds, rng)
        for rng in spawn_generators(seed, runs)
    ]
    return resolve_executor(executor, transport=transport).map(
        _run_one, tasks
    )


def optimize_weight_setting(
    topology: Topology,
    alpha: float,
    beta: float,
    iterations: int,
    random_starts: int = 2,
    seed: int = 0,
    epsilon: float = 1e-4,
    initial: Optional[np.ndarray] = None,
    executor=None,
    execution=None,
) -> OptimizationResult:
    """Best matrix for one ``(alpha, beta)`` weighting.

    Uses the multi-start perturbed optimizer (see
    :mod:`repro.core.multistart`); ``initial``, when given, is added to
    the portfolio as a warm start (used by sweep continuation).
    ``execution`` forwards to the multi-start driver (e.g.
    ``"lockstep"`` to fuse the starts' line searches — bit-identical,
    faster on one core).
    """
    cost = CoverageCost(
        topology, CostWeights(alpha=alpha, beta=beta, epsilon=epsilon)
    )
    options = PerturbedOptions(
        max_iterations=iterations,
        trisection_rounds=20,
        stall_limit=max(iterations, 1),
        record_history=False,
    )
    multi = optimize(
        cost,
        method="multistart",
        seed=seed,
        options=options,
        random_starts=random_starts,
        executor=executor,
        execution=execution,
    )
    best = multi.best
    if initial is not None:
        warm = optimize(
            cost, method="perturbed", initial=initial, seed=seed + 1,
            options=options,
        )
        if warm.best_u_eps < best.best_u_eps:
            best = warm
    return best


@dataclass
class SimulationBand:
    """Mean and percentile band of a repeatedly simulated metric."""

    mean: float
    p25: float
    p75: float


def _simulate_one(task):
    """One ``simulate_repeatedly`` task (module-level for pickling)."""
    topology, matrix, transitions, warmup, engine, rng = task
    return simulate_schedule(
        topology,
        matrix,
        transitions=transitions,
        seed=rng,
        options=SimulationOptions(warmup=warmup, engine=engine),
    )


def simulate_repeatedly(
    topology: Topology,
    matrix: np.ndarray,
    transitions: int,
    repetitions: int,
    seed: int = 0,
    warmup: Optional[int] = None,
    executor=None,
    engine: Optional[str] = None,
    transport=None,
):
    """Simulate ``matrix`` several times; return the per-run results.

    ``engine`` picks the simulation implementation (``"vectorized"`` /
    ``"loop"``; ``None`` uses the default).  Both give bit-identical
    results — the knob exists for benchmarking and validation.
    ``transport`` selects the process backend's payload transport when
    ``executor`` names a backend (see :mod:`repro.exec.shm`).
    """
    if warmup is None:
        warmup = max(transitions // 10, 100)
    if engine is None:
        engine = SimulationOptions().engine
    # Warm the chord-table cache before the tasks are built: every task
    # (and every pickled copy shipped to process workers) then reuses the
    # one precomputed geometry instead of redoing the O(M^3) intersections.
    topology.chord_table()
    tasks = [
        (topology, matrix, transitions, warmup, engine, rng)
        for rng in spawn_generators(seed, repetitions)
    ]
    return resolve_executor(executor, transport=transport).map(
        _simulate_one, tasks
    )


def metric_band(values: Sequence[float]) -> SimulationBand:
    """Mean and 25th/75th percentiles of one measured metric."""
    values = np.asarray(values, dtype=float)
    return SimulationBand(
        mean=float(values.mean()),
        p25=float(np.percentile(values, 25)),
        p75=float(np.percentile(values, 75)),
    )
