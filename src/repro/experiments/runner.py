"""Shared drivers for multi-run experiments.

Everything the per-table/per-figure code has in common: running an
algorithm across many independent seeds, optimizing one weight setting
with the multi-start portfolio, and simulating a matrix repeatedly to get
percentile bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.adaptive import AdaptiveOptions, optimize_adaptive
from repro.core.cost import CostWeights, CoverageCost
from repro.core.multistart import optimize_multistart
from repro.core.perturbed import PerturbedOptions, optimize_perturbed
from repro.core.result import OptimizationResult
from repro.simulation.engine import SimulationOptions, simulate_schedule
from repro.topology.model import Topology
from repro.utils.rng import spawn_generators


def run_many(
    cost: CoverageCost,
    algorithm: str,
    runs: int,
    iterations: int,
    seed: int = 0,
    trisection_rounds: int = 20,
) -> List[OptimizationResult]:
    """Run ``algorithm`` (``"adaptive"`` or ``"perturbed"``) ``runs`` times.

    Each run draws an independent random initial matrix (the paper's V2
    recipe) from an independent RNG stream.  History recording is off:
    multi-run experiments only need the achieved costs.
    """
    if algorithm not in ("adaptive", "perturbed"):
        raise ValueError(
            f"algorithm must be 'adaptive' or 'perturbed', got {algorithm!r}"
        )
    results = []
    for rng in spawn_generators(seed, runs):
        if algorithm == "adaptive":
            results.append(
                optimize_adaptive(
                    cost,
                    seed=rng,
                    options=AdaptiveOptions(
                        max_iterations=iterations,
                        trisection_rounds=trisection_rounds,
                        record_history=False,
                    ),
                )
            )
        else:
            results.append(
                optimize_perturbed(
                    cost,
                    seed=rng,
                    options=PerturbedOptions(
                        max_iterations=iterations,
                        trisection_rounds=trisection_rounds,
                        stall_limit=max(iterations, 1),
                        record_history=False,
                    ),
                )
            )
    return results


def optimize_weight_setting(
    topology: Topology,
    alpha: float,
    beta: float,
    iterations: int,
    random_starts: int = 2,
    seed: int = 0,
    epsilon: float = 1e-4,
    initial: Optional[np.ndarray] = None,
) -> OptimizationResult:
    """Best matrix for one ``(alpha, beta)`` weighting.

    Uses the multi-start perturbed optimizer (see
    :mod:`repro.core.multistart`); ``initial``, when given, is added to
    the portfolio as a warm start (used by sweep continuation).
    """
    cost = CoverageCost(
        topology, CostWeights(alpha=alpha, beta=beta, epsilon=epsilon)
    )
    options = PerturbedOptions(
        max_iterations=iterations,
        trisection_rounds=20,
        stall_limit=max(iterations, 1),
        record_history=False,
    )
    multi = optimize_multistart(
        cost,
        random_starts=random_starts,
        seed=seed,
        options=options,
    )
    best = multi.best
    if initial is not None:
        warm = optimize_perturbed(
            cost, initial=initial, seed=seed + 1, options=options
        )
        if warm.best_u_eps < best.best_u_eps:
            best = warm
    return best


@dataclass
class SimulationBand:
    """Mean and percentile band of a repeatedly simulated metric."""

    mean: float
    p25: float
    p75: float


def simulate_repeatedly(
    topology: Topology,
    matrix: np.ndarray,
    transitions: int,
    repetitions: int,
    seed: int = 0,
    warmup: Optional[int] = None,
):
    """Simulate ``matrix`` several times; return the per-run results."""
    if warmup is None:
        warmup = max(transitions // 10, 100)
    results = []
    for rng in spawn_generators(seed, repetitions):
        results.append(
            simulate_schedule(
                topology,
                matrix,
                transitions=transitions,
                seed=rng,
                options=SimulationOptions(warmup=warmup),
            )
        )
    return results


def metric_band(values: Sequence[float]) -> SimulationBand:
    """Mean and 25th/75th percentiles of one measured metric."""
    values = np.asarray(values, dtype=float)
    return SimulationBand(
        mean=float(values.mean()),
        p25=float(np.percentile(values, 25)),
        p75=float(np.percentile(values, 75)),
    )
