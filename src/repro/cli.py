"""Command-line interface.

Five subcommands mirror the library's workflow::

    python -m repro topology  --paper 1 --save topo.json
    python -m repro optimize  --topology topo.json --alpha 1 --beta 1e-4 \\
                              --algorithm multistart --save-matrix P.json
    python -m repro simulate  --topology topo.json --matrix P.json \\
                              --transitions 100000
    python -m repro experiment table1
    python -m repro sweep     --grid grid.json --out sweeps/run1 \\
                              --shards 4 --jobs 4 --resume
    python -m repro tradeoff  --paper 1 --points 6
    python -m repro submit    --store cache/ --paper 1 --beta 0.5 \\
                              --iterations 400
    python -m repro serve     --store cache/ --spool jobs/ \\
                              --import-sweep sweeps/run1

Every command prints a plain-text report; ``--save*`` options write JSON
artifacts via :mod:`repro.persist`.  ``submit`` and ``serve`` front the
coverage service (:mod:`repro.service`): jobs are content-addressed, so
repeated submissions of the same work are cache hits, and past sweep
directories pre-warm the cache via ``--import-sweep``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

import inspect

import repro.experiments as experiments
from repro import persist
from repro.analysis.pareto import pareto_filter, tradeoff_curve
from repro.exec import BACKENDS, TRANSPORTS, using_executor
from repro.core.api import OPTIMIZER_REGISTRY, optimize
from repro.core.cost import LINALG_MODES, CostWeights, CoverageCost
from repro.core.registry import TERM_REGISTRY, normalize_extra_terms
from repro.simulation.engine import (
    ENGINES,
    SimulationOptions,
    simulate_schedule,
)
from repro.topology.grid import grid_topology, line_topology
from repro.topology.library import (
    PAPER_TOPOLOGY_IDS,
    SCALABLE_FAMILIES,
    paper_topology,
    scalable_topology,
)
from repro.topology.random_gen import random_topology

#: Experiment names accepted by ``repro experiment``.
EXPERIMENTS = {
    "table1": experiments.table1,
    "table2": experiments.table2,
    "table3": experiments.table3,
    "table4": experiments.table4,
    "figure2a": experiments.figure2a,
    "figure2b": experiments.figure2b,
    "figure3": experiments.figure3,
    "figure4": experiments.figure4,
    "figure5a": experiments.figure5a,
    "figure5b": experiments.figure5b,
    "figure6": experiments.figure6,
    "figure7": experiments.figure7,
    "figure8": experiments.figure8,
    "ablation-step-size": experiments.ablation_step_size,
    "ablation-linesearch": experiments.ablation_linesearch,
    "ablation-optimizer": experiments.ablation_optimizer,
    "ablation-noise": experiments.ablation_noise,
    "ablation-epsilon": experiments.ablation_epsilon,
    "extension-energy": experiments.extension_energy,
    "extension-entropy": experiments.extension_entropy,
    "extension-team": experiments.extension_team,
    "extension-capture": experiments.extension_capture,
    "baselines": experiments.baseline_comparison,
    "validate": experiments.validate_reproduction,
}


def _load_topology(args):
    if args.topology:
        return persist.load_topology(args.topology)
    if args.paper:
        return paper_topology(args.paper)
    raise SystemExit("provide --topology FILE or --paper ID")


def _add_topology_source(parser) -> None:
    parser.add_argument(
        "--topology", help="path to a topology JSON file"
    )
    parser.add_argument(
        "--paper", type=int, choices=PAPER_TOPOLOGY_IDS,
        help="use a paper evaluation topology instead",
    )


def _add_parallel_flags(parser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=(
            "run independent seeds/starts on N workers "
            "(default: serial execution)"
        ),
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help=(
            "execution backend; defaults to 'process' when --jobs > 1, "
            "'serial' otherwise"
        ),
    )
    parser.add_argument(
        "--transport", choices=TRANSPORTS, default=None,
        help=(
            "process-backend payload transport: 'pickle' (plain bytes), "
            "'shm' (shared-memory tensors, broadcast-once costs), or "
            "'auto' (shm above a size threshold; the default); results "
            "are bit-identical either way"
        ),
    )


def _add_term_flags(parser) -> None:
    parser.add_argument(
        "--terms", default=None, metavar="NAME[,NAME...]",
        help=(
            "compose extra cost terms from repro.TERM_REGISTRY "
            "(e.g. 'minimax,periodicity'; registered: "
            + ", ".join(TERM_REGISTRY) + "; see docs/objectives.md)"
        ),
    )
    parser.add_argument(
        "--weights", default=None, metavar="W[,W...]",
        help=(
            "weights for --terms, one per name (default: 1.0 each); "
            "requires --terms"
        ),
    )


def _parse_term_flags(args):
    """The ``(name, weight)`` composition from ``--terms``/``--weights``.

    Returns ``None`` when no ``--terms`` was given, so callers can
    distinguish "no override" from an explicit composition.
    """
    terms_arg = getattr(args, "terms", None)
    weights_arg = getattr(args, "weights", None)
    if terms_arg is None:
        if weights_arg is not None:
            raise SystemExit("--weights requires --terms")
        return None
    names = [name.strip() for name in terms_arg.split(",") if name.strip()]
    if not names:
        raise SystemExit("--terms must name at least one registered term")
    if weights_arg is None:
        weights = [1.0] * len(names)
    else:
        try:
            weights = [float(w) for w in weights_arg.split(",")]
        except ValueError:
            raise SystemExit(
                f"--weights must be comma-separated numbers, "
                f"got {weights_arg!r}"
            )
        if len(weights) != len(names):
            raise SystemExit(
                f"--weights lists {len(weights)} value(s) for "
                f"{len(names)} term(s)"
            )
    try:
        return list(normalize_extra_terms(list(zip(names, weights))))
    except ValueError as exc:
        raise SystemExit(str(exc))


def _executor_spec(args):
    """The ``(backend, jobs, transport)`` triple from the command line."""
    jobs = getattr(args, "jobs", None)
    backend = getattr(args, "backend", None)
    transport = getattr(args, "transport", None)
    if backend is None:
        backend = "process" if jobs is not None and jobs > 1 else "serial"
    return backend, jobs, transport


def _cmd_topology(args) -> int:
    if args.paper:
        topology = paper_topology(args.paper)
    elif args.grid:
        rows, cols = args.grid
        topology = grid_topology(rows, cols)
    elif args.line:
        topology = line_topology(args.line)
    elif args.random:
        topology = random_topology(args.random, seed=args.seed)
    elif args.family:
        if args.size is None:
            raise SystemExit("--family requires --size M")
        topology = scalable_topology(
            args.family, args.size, seed=args.seed
        )
    else:
        raise SystemExit(
            "provide one of --paper, --grid, --line, --random, --family"
        )
    np.set_printoptions(precision=4, suppress=True)
    print(f"{topology.name}: {topology.size} PoIs")
    print(f"  target shares: {topology.target_shares}")
    print(f"  sensing radius: {topology.sensing_radius} m, "
          f"speed: {topology.speed} m/s")
    adjacency = topology.adjacency
    if adjacency is not None:
        legs = int(adjacency.sum() - topology.size)
        print(f"  sparse support: {legs} feasible off-diagonal legs "
              f"of {topology.size * (topology.size - 1)}")
    if topology.size <= 16:
        print("  travel times T_jk (s):")
        print(topology.travel_times)
    if args.save:
        persist.save_topology(topology, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_optimize(args) -> int:
    topology = _load_topology(args)
    weights = CostWeights(
        alpha=args.alpha,
        beta=args.beta,
        epsilon=args.epsilon,
        energy_weight=args.energy_weight,
        energy_target=args.energy_target,
        entropy_weight=args.entropy_weight,
    )
    extra_terms = _parse_term_flags(args)
    cost = CoverageCost(
        topology, weights, linalg=args.linalg,
        extra_terms=extra_terms or (),
    )
    method = args.method
    spec = OPTIMIZER_REGISTRY[method]
    options = {"max_iterations": args.iterations}
    if method == "basic":
        options["step_size"] = args.step_size
    if method == "multistart":
        # One shared iteration budget: never stop a start early.
        options["stall_limit"] = args.iterations + 1
    kwargs = {}
    if spec.accepts_seed:
        kwargs["seed"] = args.seed
    if args.execution is not None:
        if not spec.accepts_execution:
            raise SystemExit(
                f"--execution applies only to --method multistart, "
                f"not {method!r}"
            )
        kwargs["execution"] = args.execution
    result = optimize(cost, method=method, options=options, **kwargs)
    if method == "multistart":
        result = result.best

    np.set_printoptions(precision=4, suppress=True)
    print(result.summary())
    print("P =")
    print(np.asarray(result.best_matrix))
    print("coverage shares:", cost.coverage_shares(result.best_matrix))
    print("exposure times: ", cost.exposure_times(result.best_matrix))
    if args.save_matrix:
        persist.save_matrix(result.best_matrix, args.save_matrix)
        print(f"matrix saved to {args.save_matrix}")
    if args.save_result:
        persist.save_result(result, args.save_result)
        print(f"result saved to {args.save_result}")
    return 0


def _cmd_simulate(args) -> int:
    topology = _load_topology(args)
    matrix = persist.load_matrix(args.matrix)
    result = simulate_schedule(
        topology, matrix,
        transitions=args.transitions,
        seed=args.seed,
        options=SimulationOptions(warmup=args.warmup, engine=args.engine),
    )
    np.set_printoptions(precision=4, suppress=True)
    print(result.summary())
    print("coverage shares (schedule conv.):", result.coverage_shares)
    print("coverage shares (physical):     ",
          result.physical_coverage_shares)
    print("exposure (transitions):         ",
          result.exposure_transitions)
    print("occupancy:                      ", result.occupancy)
    return 0


def _cmd_experiment(args) -> int:
    function = EXPERIMENTS[args.name]
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.engine is not None:
        if "engine" not in inspect.signature(function).parameters:
            raise SystemExit(
                f"experiment {args.name!r} does not take --engine"
            )
        kwargs["engine"] = args.engine
    result = function(**kwargs)
    print(result.render())
    return 0


def _cmd_team(args) -> int:
    import numpy as np

    from repro.multisensor import (
        simulate_team,
        team_coverage_approximation,
        team_exposure_approximation,
    )

    topology = _load_topology(args)
    matrix = persist.load_matrix(args.matrix)
    solo = simulate_team(
        topology, [matrix], horizon=args.horizon, seed=args.seed,
        engine=args.engine,
    )
    team = simulate_team(
        topology, [matrix] * args.sensors, horizon=args.horizon,
        seed=args.seed + 1, engine=args.engine,
    )
    predicted_cov = team_coverage_approximation(
        np.tile(solo.coverage_shares, (args.sensors, 1))
    )
    predicted_gap = team_exposure_approximation(
        np.tile(solo.exposure_mean, (args.sensors, 1))
    )
    np.set_printoptions(precision=4, suppress=True)
    print(f"team of {args.sensors} over {args.horizon:.0f} s")
    print("union coverage shares:", team.coverage_shares)
    print("  predicted:          ", predicted_cov)
    print("mean exposure gaps (s):", team.exposure_mean)
    print("  predicted:           ", predicted_gap)
    print("per-sensor transitions:", team.transitions)
    return 0


def _cmd_sweep(args) -> int:
    from repro.sweep import load_grid, merge_shards, run_sweep

    grid = load_grid(args.grid)
    if args.linalg is not None:
        # Applied before expansion so every cell digest carries the
        # override — a different linalg backend is different work.
        grid = grid.with_linalg(args.linalg)
    terms = _parse_term_flags(args)
    if terms is not None:
        # Same rule: a different objective composition is different
        # work, so the override lands in every cell digest.
        grid = grid.with_terms(terms)
    backend, jobs, transport = _executor_spec(args)
    report = run_sweep(
        grid,
        args.out,
        shards=args.shards,
        backend=backend,
        jobs=jobs,
        transport=transport,
        resume=args.resume,
        max_cells=args.max_cells,
    )
    print(
        f"sweep {args.out}: {report.total_cells} cells expanded, "
        f"{report.unique_cells} unique "
        f"({report.duplicate_cells} duplicates collapsed)"
    )
    print(
        f"  skipped {report.skipped_cells} already complete, "
        f"ran {report.ran_cells} on {report.shards} shard(s) "
        f"[{report.backend}] in {report.wall_seconds:.2f} s"
        + (" (interrupted by --max-cells)" if report.interrupted else "")
    )
    if report.broadcast_requests:
        print(
            f"  shm broadcast: {report.broadcast_hits}/"
            f"{report.broadcast_requests} hits "
            f"({report.broadcast_hit_ratio:.0%}), "
            f"dispatch {report.dispatch_bytes} B, "
            f"results {report.result_bytes} B"
        )
    print(f"  {report.records} records on disk")
    for label, front in report.fronts.items():
        print(f"  front {label}: {len(front)} point(s)")
        for point in front:
            print(
                f"    dC={point['delta_c']:.5g} "
                f"E={point['e_bar']:.5g}  "
                f"[alpha={point['alpha']:g} beta={point['beta']:g} "
                f"{point['method']} seed={point['seed']}]"
            )
    if args.merge:
        count = merge_shards(args.out, args.merge)
        print(f"merged {count} records to {args.merge}")
    return 0


def _service_from_args(args):
    """Build the :class:`~repro.service.CoverageService` behind
    ``submit``/``serve``; ``executor=None`` picks up the scope installed
    by :func:`main` from ``--jobs``/``--backend``/``--transport``."""
    from repro.service import CoverageService, ResultStore

    store = ResultStore(args.store, max_bytes=args.max_bytes)
    service = CoverageService(store)
    if args.import_sweep:
        imported, skipped = service.import_sweep(args.import_sweep)
        print(
            f"imported {imported} sweep record(s) from "
            f"{args.import_sweep}"
            + (f" ({skipped} without a matrix skipped)" if skipped
               else "")
        )
    return service


def _cmd_submit(args) -> int:
    import json
    import pathlib

    from repro.service import (
        optimize_request,
        request_digest,
        request_from_dict,
    )

    service = _service_from_args(args)
    if args.request:
        request = request_from_dict(
            json.loads(pathlib.Path(args.request).read_text())
        )
    else:
        topology = _load_topology(args)
        request = optimize_request(
            topology,
            alpha=args.alpha,
            beta=args.beta,
            epsilon=args.epsilon,
            method=args.method,
            seed=args.seed,
            options={"max_iterations": args.iterations},
            terms=_parse_term_flags(args) or (),
            linalg=args.linalg,
        )
    digest = request_digest(request)
    payload = service.run(request)
    source = "cache" if service.stats.cache_hits else "fresh computation"
    print(f"request {digest} [{request.kind}] served from {source}")
    for key, value in sorted(payload["result"].items()):
        if not isinstance(value, list):
            print(f"  {key}: {value}")
    if args.save_matrix:
        if "matrix" not in payload:
            raise SystemExit(
                f"{request.kind} payloads carry no matrix to save"
            )
        persist.save_matrix(
            np.asarray(payload["matrix"], dtype=float),
            args.save_matrix,
        )
        print(f"matrix saved to {args.save_matrix}")
    if args.save_payload:
        pathlib.Path(args.save_payload).write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        print(f"payload saved to {args.save_payload}")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import serve_spool

    if args.spool is None and args.import_sweep is None:
        raise SystemExit("provide --spool DIR and/or --import-sweep DIR")
    service = _service_from_args(args)
    if args.spool is not None:
        written = serve_spool(service, args.spool)
        print(f"answered {len(written)} request(s) in {args.spool}")
        for path in written:
            print(f"  {path.name}")
    stats = service.stats.as_dict()
    print(
        f"stats: {stats['submitted']} submitted, "
        f"{stats['cache_hits']} cache hit(s), "
        f"{stats['computed']} computed, "
        f"{stats['fan_in_joins']} fan-in join(s), "
        f"{stats['imported']} imported"
    )
    return 0


def _cmd_tradeoff(args) -> int:
    topology = _load_topology(args)
    betas = np.geomspace(args.beta_max, args.beta_min, args.points)
    points = tradeoff_curve(
        topology, betas=betas, iterations=args.iterations,
        seed=args.seed,
    )
    efficient = pareto_filter(points)
    header = (f"{'beta':>10}  {'dC':>12}  {'E-bar':>10}  "
              f"{'travel m/step':>13}  pareto")
    print(header)
    print("-" * len(header))
    for point in points:
        marker = "*" if point in efficient else ""
        print(f"{point.beta:>10.3g}  {point.delta_c:>12.5g}  "
              f"{point.e_bar:>10.4g}  {point.mean_travel:>13.1f}  "
              f"{marker:>6}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Stochastic steepest-descent optimization of mobile sensor "
            "coverage (ICDCS 2010 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser(
        "topology", help="build, inspect, and save topologies"
    )
    p_topo.add_argument("--paper", type=int, choices=PAPER_TOPOLOGY_IDS)
    p_topo.add_argument(
        "--grid", type=int, nargs=2, metavar=("ROWS", "COLS")
    )
    p_topo.add_argument("--line", type=int, metavar="COUNT")
    p_topo.add_argument("--random", type=int, metavar="COUNT")
    p_topo.add_argument(
        "--family", choices=SCALABLE_FAMILIES,
        help="scalable sparse-support family (use with --size)",
    )
    p_topo.add_argument(
        "--size", type=int, metavar="M",
        help="PoI count for --family topologies",
    )
    p_topo.add_argument("--seed", type=int, default=0)
    p_topo.add_argument("--save", help="write topology JSON here")
    p_topo.set_defaults(handler=_cmd_topology)

    p_opt = sub.add_parser("optimize", help="optimize a schedule")
    _add_topology_source(p_opt)
    p_opt.add_argument("--alpha", type=float, default=1.0)
    p_opt.add_argument("--beta", type=float, default=1.0)
    p_opt.add_argument("--epsilon", type=float, default=1e-4)
    p_opt.add_argument("--energy-weight", type=float, default=0.0)
    p_opt.add_argument("--energy-target", type=float, default=0.0)
    p_opt.add_argument("--entropy-weight", type=float, default=0.0)
    p_opt.add_argument(
        "--method", "--algorithm", dest="method", default="perturbed",
        choices=tuple(OPTIMIZER_REGISTRY),
        help=(
            "optimizer variant (one per repro.OPTIMIZER_REGISTRY entry; "
            "--algorithm is the historical spelling)"
        ),
    )
    p_opt.add_argument(
        "--execution", default=None,
        help=(
            "how --method multistart runs its starts: 'serial', "
            "'lockstep' (fused line searches), or an execution backend "
            "name"
        ),
    )
    p_opt.add_argument(
        "--linalg", choices=LINALG_MODES, default="auto",
        help=(
            "linear-algebra backend: 'dense' (paper-exact reference), "
            "'sparse' (large sparse-support topologies), or 'auto' "
            "(sparse when the topology has an adjacency mask and is "
            "large enough; default)"
        ),
    )
    _add_term_flags(p_opt)
    p_opt.add_argument("--iterations", type=int, default=400)
    p_opt.add_argument(
        "--step-size", type=float, default=1e-6,
        help="constant step for --algorithm basic",
    )
    p_opt.add_argument("--seed", type=int, default=0)
    p_opt.add_argument("--save-matrix", help="write matrix JSON here")
    p_opt.add_argument("--save-result", help="write result JSON here")
    _add_parallel_flags(p_opt)
    p_opt.set_defaults(handler=_cmd_optimize)

    p_sim = sub.add_parser("simulate", help="simulate a schedule")
    _add_topology_source(p_sim)
    p_sim.add_argument("--matrix", required=True,
                       help="matrix JSON from `optimize --save-matrix`")
    p_sim.add_argument("--transitions", type=int, default=50_000)
    p_sim.add_argument("--warmup", type=int, default=1_000)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--engine", choices=ENGINES, default="vectorized",
        help=(
            "simulation implementation; both give bit-identical results "
            "(default: vectorized)"
        ),
    )
    p_sim.set_defaults(handler=_cmd_simulate)

    p_exp = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--seed", type=int, default=None)
    p_exp.add_argument(
        "--engine", choices=ENGINES, default=None,
        help=(
            "simulation engine for simulation-backed experiments "
            "(table4, figure6-8, extension-team)"
        ),
    )
    _add_parallel_flags(p_exp)
    p_exp.set_defaults(handler=_cmd_experiment)

    p_team = sub.add_parser(
        "team", help="simulate a homogeneous sensor team"
    )
    _add_topology_source(p_team)
    p_team.add_argument("--matrix", required=True,
                        help="matrix JSON from `optimize --save-matrix`")
    p_team.add_argument("--sensors", type=int, default=3)
    p_team.add_argument("--horizon", type=float, default=100_000.0)
    p_team.add_argument("--seed", type=int, default=0)
    p_team.add_argument(
        "--engine", choices=ENGINES, default="vectorized",
        help=(
            "team simulation implementation; both give bit-identical "
            "results (default: vectorized)"
        ),
    )
    p_team.set_defaults(handler=_cmd_team)

    p_sw = sub.add_parser(
        "sweep",
        help="run a sharded, resumable scenario sweep from a grid file",
    )
    p_sw.add_argument(
        "--grid", required=True,
        help=(
            "scenario grid JSON (schema repro/sweep-grid/v1; see "
            "docs/sweeps.md)"
        ),
    )
    p_sw.add_argument(
        "--out", required=True,
        help="sweep output directory (append-only JSONL shards)",
    )
    p_sw.add_argument(
        "--shards", type=int, default=1,
        help="number of shard queues / output files (default: 1)",
    )
    p_sw.add_argument(
        "--resume", action="store_true",
        help=(
            "continue a sweep directory that already holds shards; "
            "cells with a completed record are skipped by digest"
        ),
    )
    p_sw.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help=(
            "stop after N cells this invocation (the sweep stays "
            "resumable; mainly for smoke tests)"
        ),
    )
    p_sw.add_argument(
        "--merge", default=None, metavar="FILE",
        help=(
            "after the sweep, write the canonical merged JSONL "
            "(sorted by cell digest) here"
        ),
    )
    p_sw.add_argument(
        "--linalg", choices=LINALG_MODES, default=None,
        help=(
            "override the grid's linear-algebra backend before "
            "expansion (changes every cell digest)"
        ),
    )
    _add_term_flags(p_sw)
    _add_parallel_flags(p_sw)
    p_sw.set_defaults(handler=_cmd_sweep)

    p_job = sub.add_parser(
        "submit",
        help="submit one job to the content-addressed coverage service",
    )
    _add_topology_source(p_job)
    p_job.add_argument(
        "--store", required=True,
        help="result store directory (created if missing)",
    )
    p_job.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="LRU size bound for the store (default: unbounded)",
    )
    p_job.add_argument(
        "--request", default=None, metavar="FILE",
        help=(
            "request JSON file (schema repro/service-request/v1); "
            "when given, the optimize flags below are ignored"
        ),
    )
    p_job.add_argument("--alpha", type=float, default=1.0)
    p_job.add_argument("--beta", type=float, default=1.0)
    p_job.add_argument("--epsilon", type=float, default=1e-4)
    p_job.add_argument(
        "--method", default="perturbed",
        choices=tuple(OPTIMIZER_REGISTRY),
    )
    p_job.add_argument("--iterations", type=int, default=400)
    p_job.add_argument("--seed", type=int, default=0)
    p_job.add_argument(
        "--linalg", choices=LINALG_MODES, default="auto"
    )
    _add_term_flags(p_job)
    p_job.add_argument(
        "--import-sweep", default=None, metavar="DIR",
        help="pre-warm the store from a sweep output directory first",
    )
    p_job.add_argument("--save-matrix", help="write matrix JSON here")
    p_job.add_argument(
        "--save-payload", help="write the raw result payload JSON here"
    )
    _add_parallel_flags(p_job)
    p_job.set_defaults(handler=_cmd_submit)

    p_srv = sub.add_parser(
        "serve",
        help=(
            "answer spooled request files from the coverage service "
            "(idempotent; re-run to drain new requests)"
        ),
    )
    p_srv.add_argument(
        "--store", required=True,
        help="result store directory (created if missing)",
    )
    p_srv.add_argument(
        "--spool", default=None, metavar="DIR",
        help=(
            "directory of request JSON files; each NAME.json gains a "
            "NAME.result.json answer"
        ),
    )
    p_srv.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="LRU size bound for the store (default: unbounded)",
    )
    p_srv.add_argument(
        "--import-sweep", default=None, metavar="DIR",
        help="pre-warm the store from a sweep output directory",
    )
    _add_parallel_flags(p_srv)
    p_srv.set_defaults(handler=_cmd_serve)

    p_par = sub.add_parser(
        "tradeoff", help="trace the coverage/exposure Pareto frontier"
    )
    _add_topology_source(p_par)
    p_par.add_argument("--points", type=int, default=6)
    p_par.add_argument("--beta-max", type=float, default=1.0)
    p_par.add_argument("--beta-min", type=float, default=1e-6)
    p_par.add_argument("--iterations", type=int, default=250)
    p_par.add_argument("--seed", type=int, default=0)
    _add_parallel_flags(p_par)
    p_par.set_defaults(handler=_cmd_tradeoff)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Commands with ``--jobs`` / ``--backend`` / ``--transport`` run
    inside a :func:`repro.exec.using_executor` scope, so every
    multi-run driver they reach (``run_many``, ``optimize_multistart``,
    ``simulate_repeatedly``) fans out on the requested backend without
    further plumbing.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    backend, jobs, transport = _executor_spec(args)
    if jobs is not None and jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")
    if transport == "shm" and backend != "process":
        parser.error("--transport shm requires --backend process")
    with using_executor(backend, jobs=jobs, transport=transport):
        return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
