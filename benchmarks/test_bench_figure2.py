"""Benchmark: Fig. 2(a,b) — CDFs of achieved cost, adaptive vs perturbed."""

from bench_utils import run_once

from repro.experiments import figure2a, figure2b


def test_figure2a(benchmark, record_result):
    figure = run_once(benchmark, figure2a, seed=0)
    record_result("figure2a", figure.render())
    assert figure.raw["adaptive_trapped_fraction"] >= 0.0


def test_figure2b(benchmark, record_result):
    figure = run_once(benchmark, figure2b, seed=0)
    record_result("figure2b", figure.render())
    # Paper: the perturbed CDF rises sharply at the global optimum while
    # most adaptive runs are trapped above it.
    perturbed = sorted(figure.raw["perturbed"])
    adaptive = sorted(figure.raw["adaptive"])
    assert perturbed[len(perturbed) // 2] <= adaptive[len(adaptive) // 2]
