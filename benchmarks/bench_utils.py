"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark a whole-experiment function with a single timed round.

    The experiments are long-running end-to-end reproductions, not
    microbenchmarks; one round is the honest measurement.
    """
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
