"""Benchmark: Fig. 4 — basic algorithm, exposure-only cost."""

from bench_utils import run_once

from repro.experiments import figure4


def test_figure4(benchmark, record_result):
    figure = run_once(benchmark, figure4)
    record_result("figure4", figure.render())
    trace = figure.series[0].y
    assert trace[-1] < trace[0]
    # Diminishing returns: the second half improves less than the first.
    half = trace.size // 2
    assert (trace[0] - trace[half]) >= (trace[half] - trace[-1])
