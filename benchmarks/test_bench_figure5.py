"""Benchmark: Fig. 5(a,b) — basic trace; perturbed from random starts."""

from bench_utils import run_once

from repro.experiments import figure5a, figure5b


def test_figure5a(benchmark, record_result):
    figure = run_once(benchmark, figure5a)
    record_result("figure5a", figure.render())
    trace = figure.series[0].y
    assert trace[-1] < trace[0]


def test_figure5b(benchmark, record_result):
    figure = run_once(benchmark, figure5b, seed=0)
    record_result("figure5b", figure.render())
    finals = figure.raw["finals"]
    # Paper: different random starts converge to the same stable cost.
    assert (max(finals) - min(finals)) / max(min(finals), 1e-12) < 0.25
