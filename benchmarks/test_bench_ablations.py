"""Benchmarks: ablations A1-A3 (step size, noise, barrier width)."""

from bench_utils import run_once

from repro.experiments import (
    ablation_epsilon,
    ablation_noise,
    ablation_step_size,
)


def test_ablation_step_size(benchmark, record_result):
    table = run_once(benchmark, ablation_step_size, seed=0)
    record_result("ablation_a1_step_size", table.render())
    adaptive_cost = table.rows[-1][1]
    assert adaptive_cost <= min(row[1] for row in table.rows[:-1]) * 1.05


def test_ablation_noise(benchmark, record_result):
    table = run_once(benchmark, ablation_noise, seed=0)
    record_result("ablation_a2_noise", table.render())


def test_ablation_epsilon(benchmark, record_result):
    table = run_once(benchmark, ablation_epsilon, seed=0)
    record_result("ablation_a3_epsilon", table.render())
    # Smaller barriers admit smaller minimum entries.
    assert table.rows[-1][3] <= table.rows[0][3] + 1e-9


def test_ablation_linesearch(benchmark, record_result):
    from repro.experiments import ablation_linesearch

    table = run_once(benchmark, ablation_linesearch, seed=0)
    record_result("ablation_a4_linesearch", table.render())
    # The pre-sweep must not hurt: averages within 50% of each other.
    averages = [row[3] for row in table.rows]
    assert max(averages) <= 1.5 * min(averages)


def test_ablation_optimizer(benchmark, record_result):
    from repro.experiments import ablation_optimizer

    table = run_once(benchmark, ablation_optimizer, seed=0)
    record_result("ablation_a5_optimizer", table.render())
    # Every optimizer beats the basic constant-step variant per setting.
    by_setting = {}
    for setting, label, u_eps, _ in table.rows:
        by_setting.setdefault(setting, {})[label] = u_eps
    for setting, results in by_setting.items():
        assert min(results.values()) < results["basic (V1)"] + 1e-9
