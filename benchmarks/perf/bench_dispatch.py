#!/usr/bin/env python
"""Benchmark process-backend dispatch: pickle vs shared-memory transport.

Three claims are measured (see ``docs/performance.md``):

1. **Bit-identity** — multistart optimization and the simulation
   fan-outs return bit-identical results whichever transport ships the
   task payloads (``transport="pickle"`` vs ``transport="shm"``).
2. **Payload reduction** — with the shm transport a multistart task
   travels as shared-segment handles plus a broadcast digest instead of
   a full pickle of the cost/topology tensors and start matrix.  At the
   largest multistart cell (``M = 576``) the per-task dispatch bytes
   must shrink by at least ``PAYLOAD_FLOOR``x.
3. **Dispatch-bound speedup** — on a fan-out whose per-task compute is
   small next to its payload (repeated short simulations that each ship
   the precomputed chord table), the shm transport must be at least
   ``SPEEDUP_FLOOR``x faster end to end.

The simulation fan-outs run at ``M = 64`` only: building the leg
coverage (chord) table is O(M^3) scalar Python (~2.5 s at M=64, hours
at M=576), a one-time parent-side cost unrelated to dispatch, so larger
cells would measure table construction, not transport.  The cap is
recorded in the results file rather than applied silently.  Multistart
needs no chord table and covers ``M in {64, 256, 576}``.

Results are written to ``benchmarks/results/BENCH_dispatch.json``.

Usage::

    python benchmarks/perf/bench_dispatch.py               # full run
    python benchmarks/perf/bench_dispatch.py --check-only  # CI smoke

``--check-only`` shrinks every size, asserts bit-identity, payload
sanity (shm strictly smaller than pickle), and shm-segment leak
freedom, skips writing the results file, and exits nonzero on any
violation.  The speedup and payload floors are asserted on full runs
only — smoke sizes are too small for stable ratios.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import fields
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro import CostWeights, CoverageCost, scalable_topology  # noqa: E402
from repro.core.initializers import paper_random_matrix  # noqa: E402
from repro.core.multistart import optimize_multistart  # noqa: E402
from repro.core.perturbed import PerturbedOptions  # noqa: E402
from repro.exec import ProcessExecutor  # noqa: E402
from repro.exec import shm  # noqa: E402
from repro.experiments.runner import simulate_repeatedly  # noqa: E402
from repro.multisensor.engine import simulate_team_repeatedly  # noqa: E402

DEFAULT_OUT = REPO / "benchmarks" / "results" / "BENCH_dispatch.json"

#: Multistart grid of the full run; the largest cell carries the
#: payload-reduction acceptance floor.
MULTISTART_SIZES = (64, 256, 576)
SMOKE_MULTISTART_SIZES = (36,)
#: Simulation fan-outs are capped here — see the module docstring.
SIM_SIZE = 64
SMOKE_SIM_SIZE = 36
PAYLOAD_FLOOR = 50.0
SPEEDUP_FLOOR = 2.0
TRANSPORTS = ("pickle", "shm")
JOBS = 2


class CheckFailure(AssertionError):
    """A correctness claim the benchmark asserts did not hold."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def _noop(_):
    return None


def _measured_map(transport, run, label):
    """Run ``run(executor)`` on a warmed process pool; return the result
    plus wall-clock and the dispatch deltas for exactly that fan-out."""
    with ProcessExecutor(jobs=JOBS, transport=transport) as executor:
        executor.map(_noop, [0, 1])  # spawn + import cost off the clock
        timings = executor.timings
        tasks0 = timings.tasks
        bytes0 = timings.dispatch_bytes
        seconds0 = timings.dispatch_seconds
        started = time.perf_counter()
        result = run(executor)
        wall = time.perf_counter() - started
        tasks = timings.tasks - tasks0
        _check(tasks > 0, f"{label}/{transport}: fan-out ran no tasks")
        return result, {
            "transport": transport,
            "wall_seconds": wall,
            "tasks": tasks,
            "bytes_per_task": (timings.dispatch_bytes - bytes0) / tasks,
            "dispatch_seconds": timings.dispatch_seconds - seconds0,
        }


def _compare_transports(label, run, identical):
    """Run ``run`` under both transports; assert ``identical`` holds and
    return per-transport measurements plus the derived ratios."""
    results, measured = {}, {}
    for transport in TRANSPORTS:
        results[transport], measured[transport] = _measured_map(
            transport, run, label
        )
    identical(results["pickle"], results["shm"])
    pickle_m, shm_m = measured["pickle"], measured["shm"]
    _check(
        shm_m["bytes_per_task"] < pickle_m["bytes_per_task"],
        f"{label}: shm payload {shm_m['bytes_per_task']:.0f} B/task not "
        f"below pickle's {pickle_m['bytes_per_task']:.0f}",
    )
    return {
        "pickle": pickle_m,
        "shm": shm_m,
        "payload_reduction": (
            pickle_m["bytes_per_task"] / shm_m["bytes_per_task"]
        ),
        "speedup": pickle_m["wall_seconds"] / shm_m["wall_seconds"],
    }


def _multistart_identical(label):
    def identical(a, b):
        _check(a.best.best_u_eps == b.best.best_u_eps,
               f"{label}: best u_eps differs across transports")
        _check(a.start_labels == b.start_labels,
               f"{label}: start labels differ across transports")
        for mine, reference in zip(a.runs, b.runs):
            _check(
                mine.best_matrix.tobytes()
                == reference.best_matrix.tobytes()
                and mine.cost_trace().tobytes()
                == reference.cost_trace().tobytes(),
                f"{label}: per-start trajectories differ across "
                "transports",
            )
    return identical


def _simulation_identical(label):
    def identical(a, b):
        for mine, reference in zip(a, b):
            _check(
                np.array_equal(
                    mine.coverage_shares, reference.coverage_shares
                )
                and mine.delta_c == reference.delta_c
                and mine.total_time == reference.total_time,
                f"{label}: simulation outputs differ across transports",
            )
    return identical


def _team_identical(label):
    def identical(a, b):
        for mine, reference in zip(a, b):
            for field in fields(reference):
                expected = np.asarray(getattr(reference, field.name))
                actual = np.asarray(getattr(mine, field.name))
                _check(
                    np.array_equal(
                        actual, expected,
                        equal_nan=expected.dtype.kind == "f",
                    ),
                    f"{label}: team field {field.name!r} differs "
                    "across transports",
                )
    return identical


def bench_multistart_cell(size: int, seed: int):
    """One-iteration multistart at ``M = size``: every task ships the
    cost (topology tensors) and its start matrix."""
    topology = scalable_topology("city-grid", size, seed=seed)
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1e-3))
    options = PerturbedOptions(
        max_iterations=1, stall_limit=2, record_history=False,
        trisection_rounds=1, geometric_decades=0,
    )

    def run(executor):
        return optimize_multistart(
            cost, random_starts=4, delta_grid=(), seed=seed + 1,
            options=options, executor=executor,
        )

    label = f"multistart/M={size}"
    cell = _compare_transports(label, run, _multistart_identical(label))
    cell.update({"workload": "multistart", "size": size, "seed": seed})
    return cell


def bench_sim_fanout(size: int, seed: int, transitions: int,
                     repetitions: int):
    """The dispatch-bound fan-out: short independent simulations that
    each ship the precomputed chord table but compute for milliseconds."""
    topology = scalable_topology("city-grid", size, seed=seed)
    matrix = paper_random_matrix(
        size, seed=seed + 1, support=topology.adjacency
    )
    # One serial repetition builds every lazy per-topology cache (chord
    # table, pass-by entries) in the parent; the fan-out then ships the
    # warmed state instead of each worker re-deriving it.
    simulate_repeatedly(
        topology, matrix, transitions=transitions, repetitions=1,
        seed=seed + 2, executor="serial",
    )

    def run(executor):
        return simulate_repeatedly(
            topology, matrix, transitions=transitions,
            repetitions=repetitions, seed=seed + 2, executor=executor,
        )

    label = f"simulate/M={size}"
    cell = _compare_transports(label, run, _simulation_identical(label))
    cell.update({
        "workload": "simulate", "size": size, "seed": seed,
        "transitions": transitions, "repetitions": repetitions,
    })
    return cell


def bench_team_fanout(size: int, seed: int, horizon: float,
                      repetitions: int):
    """Team-simulation fan-out: chord table plus one matrix per sensor."""
    topology = scalable_topology("city-grid", size, seed=seed)
    matrices = [
        paper_random_matrix(size, seed=seed + k, support=topology.adjacency)
        for k in (1, 2)
    ]
    simulate_team_repeatedly(  # warm the lazy topology caches, as above
        topology, matrices, horizon=horizon, repetitions=1,
        seed=seed + 3, executor="serial",
    )

    def run(executor):
        return simulate_team_repeatedly(
            topology, matrices, horizon=horizon,
            repetitions=repetitions, seed=seed + 3, executor=executor,
        )

    label = f"team/M={size}"
    cell = _compare_transports(label, run, _team_identical(label))
    cell.update({
        "workload": "team", "size": size, "seed": seed,
        "horizon": horizon, "repetitions": repetitions,
    })
    return cell


def _leaked_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return None
    return sorted(
        name for name in os.listdir("/dev/shm")
        if name.startswith(shm.SEGMENT_PREFIX)
    )


def _print_cell(cell) -> None:
    print(
        f"  pickle {cell['pickle']['bytes_per_task']:,.0f} B/task "
        f"{cell['pickle']['wall_seconds']:.2f}s | shm "
        f"{cell['shm']['bytes_per_task']:,.0f} B/task "
        f"{cell['shm']['wall_seconds']:.2f}s -> payload "
        f"{cell['payload_reduction']:.0f}x, wall "
        f"{cell['speedup']:.2f}x",
        flush=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check-only", action="store_true",
        help="small sizes, assert bit-identity and leak freedom, "
        "write nothing",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"results file (default: {DEFAULT_OUT})",
    )
    parser.add_argument("--seed", type=int, default=2010)
    args = parser.parse_args(argv)

    if args.check_only:
        multistart_sizes = SMOKE_MULTISTART_SIZES
        sim_size, transitions, sim_reps = SMOKE_SIM_SIZE, 120, 6
        horizon, team_reps = 60.0, 3
    else:
        multistart_sizes = MULTISTART_SIZES
        sim_size, transitions, sim_reps = SIM_SIZE, 300, 24
        horizon, team_reps = 150.0, 8

    cells = []
    try:
        for size in multistart_sizes:
            print(f"multistart M={size} ...", flush=True)
            cell = bench_multistart_cell(size, args.seed)
            cells.append(cell)
            _print_cell(cell)
        print(f"simulate fan-out M={sim_size} ...", flush=True)
        cell = bench_sim_fanout(sim_size, args.seed, transitions, sim_reps)
        cells.append(cell)
        _print_cell(cell)
        print(f"team fan-out M={sim_size} ...", flush=True)
        cell = bench_team_fanout(sim_size, args.seed, horizon, team_reps)
        cells.append(cell)
        _print_cell(cell)

        leaked = _leaked_segments()
        if leaked is not None:
            _check(not leaked,
                   f"leaked shared-memory segments: {leaked}")
            print("no leaked shm segments", flush=True)

        if not args.check_only:
            largest = max(
                (c for c in cells if c["workload"] == "multistart"),
                key=lambda c: c["size"],
            )
            _check(
                largest["payload_reduction"] >= PAYLOAD_FLOOR,
                f"multistart/M={largest['size']}: payload reduction "
                f"{largest['payload_reduction']:.0f}x below the "
                f"{PAYLOAD_FLOOR:.0f}x acceptance floor",
            )
            dispatch_bound = next(
                c for c in cells if c["workload"] == "simulate"
            )
            _check(
                dispatch_bound["speedup"] >= SPEEDUP_FLOOR,
                f"simulate/M={dispatch_bound['size']}: speedup "
                f"{dispatch_bound['speedup']:.2f}x below the "
                f"{SPEEDUP_FLOOR:.1f}x acceptance floor",
            )
    except CheckFailure as failure:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1

    if args.check_only:
        print("all checks passed")
        return 0

    payload = {
        "benchmark": "BENCH_dispatch",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "note": (
            "pickle vs shm process-backend transport on warmed "
            f"{JOBS}-worker spawn pools; bytes_per_task counts the "
            "submitted task blob (transport payload), wall_seconds the "
            "end-to-end fan-out; bit-identity of results is asserted "
            "per cell; the largest multistart cell carries the >= "
            f"{PAYLOAD_FLOOR:.0f}x payload-reduction floor and the "
            "simulate fan-out (dispatch-bound: per-task compute is "
            "milliseconds next to a chord-table payload) carries the "
            f">= {SPEEDUP_FLOOR:.0f}x end-to-end speedup floor; "
            "simulation fan-outs are capped at M=64 because the chord "
            "table build is O(M^3) scalar Python — a parent-side "
            "construction cost unrelated to dispatch — not because "
            "transport stops scaling",
        ),
        "floors": {
            "payload_reduction": PAYLOAD_FLOOR,
            "dispatch_bound_speedup": SPEEDUP_FLOOR,
        },
        "cells": cells,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
