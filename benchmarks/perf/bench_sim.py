#!/usr/bin/env python
"""Benchmark the vectorized simulation engine against the loop reference.

Two claims are measured (see ``docs/performance.md``):

1. **Equivalence** — for every benchmarked configuration the two engines
   return bit-identical :class:`SimulationResult` objects (same sampled
   path, every metric equal), which trivially satisfies the documented
   1e-12 tolerance.
2. **Speedup** — the vectorized engine (pre-sampled paths + array
   interval arithmetic) beats the per-step loop by a growing margin as
   the transition count rises; the acceptance floor is 5x at 64 PoIs
   and 100k transitions.

Results are written to ``benchmarks/results/BENCH_sim.json``.  Chord
tables are warmed before timing so both engines are measured on the
per-transition work, not the shared O(M^3) geometry precompute (which
is cached on the topology and paid once per process).

Usage::

    python benchmarks/perf/bench_sim.py               # full run
    python benchmarks/perf/bench_sim.py --check-only  # CI smoke

``--check-only`` shrinks every size, asserts the equivalence claim,
skips writing the results file, and exits nonzero on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import fields
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.simulation.engine import (  # noqa: E402
    SimulationOptions,
    simulate_schedule,
)
from repro.topology.random_gen import random_topology  # noqa: E402

DEFAULT_OUT = REPO / "benchmarks" / "results" / "BENCH_sim.json"

#: (PoI count, measured transitions) grid of the full run.  The largest
#: cell carries the acceptance claim: >= 5x at 64 PoIs / 100k
#: transitions.
FULL_GRID = ((8, 20_000), (16, 50_000), (64, 100_000))
SMOKE_GRID = ((5, 400),)


class CheckFailure(AssertionError):
    """A correctness claim the benchmark asserts did not hold."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def _results_identical(loop, vectorized) -> list:
    """Names of SimulationResult fields that differ between engines."""
    mismatched = []
    for field in fields(loop):
        expected = getattr(loop, field.name)
        actual = getattr(vectorized, field.name)
        if expected is None or actual is None:
            if expected is not actual:
                mismatched.append(field.name)
            continue
        expected = np.asarray(expected)
        actual = np.asarray(actual)
        equal_nan = expected.dtype.kind == "f"
        if expected.shape != actual.shape or not np.array_equal(
            actual, expected, equal_nan=equal_nan
        ):
            mismatched.append(field.name)
    return mismatched


def bench_cell(size: int, transitions: int, seed: int, warmup: int,
               repeats: int = 3):
    """Time both engines on one (size, transitions) configuration.

    Each engine runs ``repeats`` times and reports the fastest wall
    clock (steady state: the first run additionally pays allocator and
    page-fault costs that are not per-simulation work).
    """
    topology = random_topology(
        size, area_side=400.0 * np.sqrt(size), seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    raw = rng.random((size, size)) + np.eye(size)
    matrix = raw / raw.sum(axis=1, keepdims=True)
    topology.chord_table()  # warm the shared geometry outside the timing

    timings = {}
    results = {}
    for engine in ("loop", "vectorized"):
        options = SimulationOptions(
            warmup=warmup, record_path=True, engine=engine
        )
        best = np.inf
        for _ in range(repeats):
            started = time.perf_counter()
            results[engine] = simulate_schedule(
                topology, matrix, transitions, seed=seed, options=options
            )
            best = min(best, time.perf_counter() - started)
        timings[engine] = best

    mismatched = _results_identical(results["loop"], results["vectorized"])
    _check(
        not mismatched,
        f"{size} PoIs / {transitions} transitions: engines disagree on "
        f"{', '.join(mismatched)}",
    )
    speedup = timings["loop"] / timings["vectorized"]
    return {
        "topology_size": size,
        "transitions": transitions,
        "warmup": warmup,
        "seed": seed,
        "loop_seconds": timings["loop"],
        "vectorized_seconds": timings["vectorized"],
        "speedup": speedup,
        "bit_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check-only", action="store_true",
        help="tiny sizes, assert the equivalence claim, write nothing",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"results file (default: {DEFAULT_OUT})",
    )
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--warmup", type=int, default=1_000,
                        help="warmup transitions per simulation")
    args = parser.parse_args(argv)

    grid = SMOKE_GRID if args.check_only else FULL_GRID
    if args.check_only:
        args.warmup = min(args.warmup, 50)

    cells = []
    try:
        for size, transitions in grid:
            print(f"{size} PoIs x {transitions} transitions ...",
                  flush=True)
            cell = bench_cell(size, transitions, args.seed, args.warmup)
            cells.append(cell)
            print(f"  loop {cell['loop_seconds']:.2f}s, vectorized "
                  f"{cell['vectorized_seconds']:.2f}s -> "
                  f"{cell['speedup']:.1f}x, bit-identical")
        if not args.check_only:
            flagship = cells[-1]
            _check(
                flagship["speedup"] >= 5.0,
                f"flagship speedup {flagship['speedup']:.1f}x below the "
                "5x acceptance floor",
            )
    except CheckFailure as failure:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1

    if args.check_only:
        print("all checks passed")
        return 0

    payload = {
        "benchmark": "BENCH_sim",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "note": (
            "speedup = loop_seconds / vectorized_seconds per cell; both "
            "engines produce bit-identical SimulationResult values, "
            "checked field-by-field each run"
        ),
        "cells": cells,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
