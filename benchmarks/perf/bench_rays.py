#!/usr/bin/env python
"""Benchmark the lockstep multi-ray driver against the serial multi-start.

Two claims are measured (see ``docs/performance.md`` and
``docs/api.md``):

1. **Equivalence** — for every benchmarked configuration
   ``lockstep_multistart`` returns per-start runs that are bit-identical
   to ``optimize_multistart(..., executor=None)``: same best values,
   same matrix bytes, same per-iteration histories, same perf
   accounting.
2. **Speedup** — fusing every active start's line-search stage
   (geometric sweep, trisection rounds, fallback probes) into one
   stacked :meth:`CoverageCost.batch_evaluate` beats running the starts
   one after another; the acceptance floor is 1.5x on every cell with
   ``random_starts >= 4``.

Results are written to ``benchmarks/results/BENCH_rays.json``.

Usage::

    python benchmarks/perf/bench_rays.py               # full run
    python benchmarks/perf/bench_rays.py --check-only  # CI smoke

``--check-only`` shrinks the iteration budgets, asserts the equivalence
claim, skips writing the results file, and exits nonzero on any
violation.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro import CostWeights, CoverageCost, paper_topology  # noqa: E402
from repro.core.lockstep import lockstep_multistart  # noqa: E402
from repro.core.multistart import optimize_multistart  # noqa: E402
from repro.core.perturbed import PerturbedOptions  # noqa: E402

DEFAULT_OUT = REPO / "benchmarks" / "results" / "BENCH_rays.json"

#: (paper topology id, random_starts, iterations) grid of the full run.
#: Cells with random_starts >= 4 carry the acceptance claim: >= 1.5x.
FULL_GRID = (
    (1, 2, 60),
    (1, 4, 60),
    (2, 6, 40),
)
SMOKE_GRID = ((1, 2, 6), (1, 4, 5))
SPEEDUP_FLOOR = 1.5


class CheckFailure(AssertionError):
    """A correctness claim the benchmark asserts did not hold."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def _runs_identical(serial, lockstep) -> list:
    """Descriptions of any per-start mismatches between the drivers."""
    mismatched = []
    if serial.start_labels != lockstep.start_labels:
        mismatched.append("start_labels")
    for index, (run_a, run_b) in enumerate(
        zip(serial.runs, lockstep.runs)
    ):
        label = serial.start_labels[index]
        if run_a.best_u_eps != run_b.best_u_eps:
            mismatched.append(f"{label}: best_u_eps")
        if run_a.best_matrix.tobytes() != run_b.best_matrix.tobytes():
            mismatched.append(f"{label}: best_matrix")
        if run_a.iterations != run_b.iterations:
            mismatched.append(f"{label}: iterations")
        if run_a.history != run_b.history:
            mismatched.append(f"{label}: history")
        perf_a, perf_b = run_a.perf, run_b.perf
        for name in (
            "accepted_steps", "accept_factorizations", "factorizations",
            "state_builds", "states_reused", "batch_calls",
            "batch_matrices",
        ):
            if getattr(perf_a, name) != getattr(perf_b, name):
                mismatched.append(f"{label}: perf.{name}")
    return mismatched


def bench_cell(paper_id: int, random_starts: int, iterations: int,
               seed: int, repeats: int = 3):
    """Time both drivers on one (topology, starts, budget) configuration.

    Each driver runs ``repeats`` times and reports the fastest wall
    clock (steady state: the first run additionally pays allocator and
    import costs that are not per-iteration work).
    """
    cost = CoverageCost(
        paper_topology(paper_id), CostWeights(alpha=1.0, beta=1.0)
    )
    options = PerturbedOptions(
        max_iterations=iterations,
        stall_limit=iterations + 1,
        record_history=True,
    )

    timings = {}
    results = {}
    drivers = {
        "serial": lambda: optimize_multistart(
            cost, random_starts=random_starts, seed=seed,
            options=options, executor=None,
        ),
        "lockstep": lambda: lockstep_multistart(
            cost, random_starts=random_starts, seed=seed,
            options=options,
        ),
    }
    for name, run in drivers.items():
        best = np.inf
        for _ in range(repeats):
            started = time.perf_counter()
            results[name] = run()
            best = min(best, time.perf_counter() - started)
        timings[name] = best

    mismatched = _runs_identical(results["serial"], results["lockstep"])
    _check(
        not mismatched,
        f"topology {paper_id} / starts={random_starts}: drivers "
        f"disagree on {', '.join(mismatched)}",
    )
    speedup = timings["serial"] / timings["lockstep"]
    return {
        "paper_topology": paper_id,
        "size": results["serial"].best.best_matrix.shape[0],
        "random_starts": random_starts,
        "portfolio_size": len(results["serial"].runs),
        "iterations": iterations,
        "seed": seed,
        "serial_seconds": timings["serial"],
        "lockstep_seconds": timings["lockstep"],
        "speedup": speedup,
        "best_u_eps": float(results["lockstep"].best.best_u_eps),
        "bit_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check-only", action="store_true",
        help="tiny budgets, assert the equivalence claim, write nothing",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"results file (default: {DEFAULT_OUT})",
    )
    parser.add_argument("--seed", type=int, default=2010)
    args = parser.parse_args(argv)

    grid = SMOKE_GRID if args.check_only else FULL_GRID

    cells = []
    try:
        for paper_id, starts, iterations in grid:
            print(
                f"topology {paper_id} x starts={starts} x "
                f"{iterations} iterations ...",
                flush=True,
            )
            cell = bench_cell(paper_id, starts, iterations, args.seed)
            cells.append(cell)
            print(
                f"  serial {cell['serial_seconds']:.2f}s, lockstep "
                f"{cell['lockstep_seconds']:.2f}s -> "
                f"{cell['speedup']:.1f}x, bit-identical "
                f"({cell['portfolio_size']} portfolio starts)"
            )
        if not args.check_only:
            for cell in cells:
                if cell["random_starts"] >= 4:
                    _check(
                        cell["speedup"] >= SPEEDUP_FLOOR,
                        f"starts={cell['random_starts']} speedup "
                        f"{cell['speedup']:.1f}x below the "
                        f"{SPEEDUP_FLOOR:.1f}x acceptance floor",
                    )
    except CheckFailure as failure:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1

    if args.check_only:
        print("all checks passed")
        return 0

    payload = {
        "benchmark": "BENCH_rays",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "note": (
            "speedup = serial_seconds / lockstep_seconds per cell; the "
            "lockstep driver returns per-start runs bit-identical to "
            "optimize_multistart(executor=None) — histories, matrix "
            "bytes, and perf accounting checked each run; cells with "
            "random_starts >= 4 enforce the 1.5x acceptance floor"
        ),
        "cells": cells,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
