#!/usr/bin/env python
"""Benchmark the sparse chain solvers against the dense reference at
large ``M``.

Three claims are measured (see ``docs/performance.md``):

1. **Equivalence** — on the scalable sparse-support families
   (``city-grid``, ``ring-of-grids``) the sparse linear algebra
   (``linalg="sparse"``) agrees with the dense reference
   (``linalg="dense"``) on the stationary distribution, the cost value,
   the projected gradient, and stacked line-search evaluations to tight
   relative tolerances.
2. **Dense regression** — on the paper evaluation topologies (no
   adjacency mask) an explicit ``linalg="dense"`` cost optimizes
   bit-identically to the default ``linalg="auto"`` cost, which resolves
   to dense there.
3. **Speedup** — one descent-iteration workload (state build, cost
   evaluation, projected gradient, one stacked 8-probe line-search
   batch) is at least ``SPEEDUP_FLOOR``x faster sparse than dense at
   ``M >= 256``.  Each cell also times the incremental
   :class:`~repro.markov.incremental.IncrementalCoreTracker` acquire for
   a 4-row perturbation against a from-scratch refactorization.

Results are written to ``benchmarks/results/BENCH_largeM.json``.

Usage::

    python benchmarks/perf/bench_largeM.py               # full run
    python benchmarks/perf/bench_largeM.py --check-only  # CI smoke

``--check-only`` runs a small grid, asserts the equivalence and dense
regression claims (speedup floors are asserted on full runs only —
smoke sizes are too small for stable timing), skips writing the results
file, and exits nonzero on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro import (  # noqa: E402
    CostWeights,
    CoverageCost,
    optimize,
    paper_topology,
    scalable_topology,
)
from repro.core.initializers import paper_random_matrix  # noqa: E402
from repro.core.linesearch import feasible_step_bound  # noqa: E402
from repro.markov.incremental import IncrementalCoreTracker  # noqa: E402

DEFAULT_OUT = REPO / "benchmarks" / "results" / "BENCH_largeM.json"

#: (family, M) grid of the full run.  Cells with M >= 256 carry the
#: speedup acceptance claim.
FULL_GRID = (
    ("city-grid", 64),
    ("city-grid", 256),
    ("ring-of-grids", 256),
    ("city-grid", 576),
)
SMOKE_GRID = (("city-grid", 36), ("ring-of-grids", 32))
SPEEDUP_FLOOR = 5.0
PROBES = 8


class CheckFailure(AssertionError):
    """A correctness claim the benchmark asserts did not hold."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def _iteration_workload(cost, matrix):
    """One descent iteration's linear-algebra workload, timed per cell.

    State build (stationary + core factorization), cost evaluation,
    projected gradient, and one stacked ``PROBES``-probe line-search
    batch — the per-iteration arithmetic every optimizer variant runs.
    Returns the pieces the equivalence checks compare.
    """
    state = cost.build_state(matrix)
    breakdown = cost.evaluate(state)
    gradient = cost.projected_gradient(state)
    direction = -gradient
    bound = feasible_step_bound(matrix, direction)
    steps = bound * np.linspace(0.05, 0.65, PROBES)
    stack = matrix[None] + steps[:, None, None] * direction[None]
    values, pis, _, ok = cost.batch_evaluate(stack)
    return state.pi, breakdown.u_eps, gradient, values, ok


def _relative(a, b):
    scale = max(np.abs(a).max(), np.abs(b).max(), 1e-300)
    return float(np.abs(a - b).max() / scale)


def bench_cell(family: str, size: int, seed: int, repeats: int = 3):
    """Time the dense and sparse backends on one scalable topology."""
    topology = scalable_topology(family, size, seed=seed)
    weights = CostWeights(alpha=1.0, beta=1e-3)
    costs = {
        "dense": CoverageCost(topology, weights, linalg="dense"),
        "sparse": CoverageCost(topology, weights, linalg="sparse"),
    }
    matrix = paper_random_matrix(
        size, seed=seed + 1, support=topology.adjacency
    )

    timings = {}
    outputs = {}
    for name, cost in costs.items():
        best = np.inf
        for _ in range(repeats):
            started = time.perf_counter()
            outputs[name] = _iteration_workload(cost, matrix)
            best = min(best, time.perf_counter() - started)
        timings[name] = best

    pi_d, u_d, grad_d, vals_d, ok_d = outputs["dense"]
    pi_s, u_s, grad_s, vals_s, ok_s = outputs["sparse"]
    pi_diff = float(np.abs(pi_d - pi_s).max())
    u_diff = abs(u_d - u_s) / max(abs(u_d), 1e-300)
    grad_diff = _relative(grad_d, grad_s)
    _check(np.array_equal(ok_d, ok_s),
           f"{family}/{size}: probe feasibility masks disagree")
    both = ok_d & ok_s
    vals_diff = _relative(vals_d[both], vals_s[both]) if both.any() else 0.0
    _check(pi_diff < 1e-10,
           f"{family}/{size}: pi diff {pi_diff:.2e} above 1e-10")
    _check(u_diff < 1e-9,
           f"{family}/{size}: u_eps rel diff {u_diff:.2e} above 1e-9")
    _check(grad_diff < 1e-6,
           f"{family}/{size}: gradient rel diff {grad_diff:.2e} "
           "above 1e-6")
    _check(vals_diff < 1e-9,
           f"{family}/{size}: batch value rel diff {vals_diff:.2e} "
           "above 1e-9")

    # Incremental acquire for a 4-row perturbation vs full refactor.
    tracker = IncrementalCoreTracker()
    tracker.acquire(matrix)
    perturbed = matrix.copy()
    rng = np.random.default_rng(seed + 2)
    support = topology.adjacency
    for row in rng.choice(size, size=4, replace=False):
        entries = np.nonzero(support[row])[0]
        nudge = rng.normal(size=entries.size)
        nudge -= nudge.mean()
        scale = 1e-3 * perturbed[row, entries].min() / np.abs(nudge).max()
        perturbed[row, entries] += scale * nudge
    started = time.perf_counter()
    tracker.acquire(perturbed)
    incremental_seconds = time.perf_counter() - started
    _check(tracker.incremental_updates == 1,
           f"{family}/{size}: 4-row perturbation did not take the "
           "incremental path")
    fresh = IncrementalCoreTracker()
    started = time.perf_counter()
    fresh.acquire(perturbed)
    refactor_seconds = time.perf_counter() - started

    speedup = timings["dense"] / timings["sparse"]
    return {
        "family": family,
        "size": size,
        "seed": seed,
        "probes": PROBES,
        "dense_seconds": timings["dense"],
        "sparse_seconds": timings["sparse"],
        "speedup": speedup,
        "incremental_seconds": incremental_seconds,
        "refactor_seconds": refactor_seconds,
        "incremental_speedup": refactor_seconds / max(
            incremental_seconds, 1e-12
        ),
        "pi_diff": pi_diff,
        "u_eps_rel_diff": float(u_diff),
        "gradient_rel_diff": grad_diff,
        "batch_values_rel_diff": vals_diff,
    }


def check_dense_regression(seed: int) -> None:
    """``linalg="dense"`` must match ``linalg="auto"`` bit for bit on a
    paper topology (auto resolves dense there — no adjacency mask)."""
    topology = paper_topology(1)
    weights = CostWeights(alpha=1.0, beta=1.0)
    options = {"max_iterations": 25, "stall_limit": 26}
    runs = {}
    for mode in ("auto", "dense"):
        cost = CoverageCost(topology, weights, linalg=mode)
        _check(cost.resolved_linalg == "dense",
               f"paper topology resolved {mode!r} to "
               f"{cost.resolved_linalg!r}, expected 'dense'")
        runs[mode] = optimize(
            cost, method="perturbed", seed=seed, options=options
        )
    _check(
        runs["auto"].best_matrix.tobytes()
        == runs["dense"].best_matrix.tobytes()
        and runs["auto"].best_u_eps == runs["dense"].best_u_eps,
        "paper-topology run differs between linalg='auto' and 'dense'",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check-only", action="store_true",
        help="small grid, assert equivalence claims, write nothing",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"results file (default: {DEFAULT_OUT})",
    )
    parser.add_argument("--seed", type=int, default=2010)
    args = parser.parse_args(argv)

    grid = SMOKE_GRID if args.check_only else FULL_GRID

    cells = []
    try:
        check_dense_regression(args.seed)
        print("dense regression: linalg='dense' bit-identical to 'auto' "
              "on paper topology 1", flush=True)
        for family, size in grid:
            print(f"{family} M={size} ...", flush=True)
            cell = bench_cell(family, size, args.seed)
            cells.append(cell)
            print(
                f"  dense {cell['dense_seconds']:.3f}s, sparse "
                f"{cell['sparse_seconds']:.3f}s -> "
                f"{cell['speedup']:.1f}x; incremental acquire "
                f"{cell['incremental_speedup']:.1f}x faster than "
                f"refactor; grad rel diff "
                f"{cell['gradient_rel_diff']:.1e}"
            )
        if not args.check_only:
            for cell in cells:
                if cell["size"] >= 256:
                    _check(
                        cell["speedup"] >= SPEEDUP_FLOOR,
                        f"{cell['family']}/{cell['size']}: speedup "
                        f"{cell['speedup']:.1f}x below the "
                        f"{SPEEDUP_FLOOR:.1f}x acceptance floor",
                    )
    except CheckFailure as failure:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1

    if args.check_only:
        print("all checks passed")
        return 0

    payload = {
        "benchmark": "BENCH_largeM",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "note": (
            "speedup = dense_seconds / sparse_seconds for one descent "
            "iteration's linear algebra (state build, evaluation, "
            "projected gradient, stacked 8-probe line-search batch) on "
            "the scalable sparse-support families; equivalence of pi, "
            "u_eps, projected gradients, and batch values is asserted "
            "per cell; cells with M >= 256 carry the >= "
            f"{SPEEDUP_FLOOR:.0f}x acceptance floor; "
            "incremental_speedup compares an IncrementalCoreTracker "
            "acquire for a 4-row perturbation against a from-scratch "
            "refactorization"
        ),
        "cells": cells,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
