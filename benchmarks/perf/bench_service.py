#!/usr/bin/env python
"""Benchmark the coverage service against uncached recomputation.

Three claims are measured (see ``docs/service.md``):

1. **Warm-cache speedup** — serving a completed request from the
   content-addressed store must be at least ``WARM_FLOOR``x faster
   than recomputing it, and the served payload must be *bit-identical*
   to the recomputation (same canonical JSON).
2. **Fan-in under duplicate-heavy load** — a batch in which every
   unique request appears ``COPIES`` times must run the optimizer
   exactly once per unique request (asserted on the service's
   counters) and finish at least ``FANIN_FLOOR``x faster than the
   no-dedup baseline, which computes every submission independently.
3. **Checkpoint resume exactness** — a job killed mid-run after its
   checkpoint resumes to a payload byte-identical to an uninterrupted
   run.

Results are written to ``benchmarks/results/BENCH_service.json``.

Usage::

    python benchmarks/perf/bench_service.py               # full run
    python benchmarks/perf/bench_service.py --check-only  # CI smoke

``--check-only`` shrinks the workload, asserts bit-identity, both
floors, resume exactness, and store validity
(``tools/check_service_store.py``), and writes nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro.core.api import OPTIMIZER_REGISTRY  # noqa: E402
from repro.core.options import coerce_options  # noqa: E402
from repro.core.perturbed import (  # noqa: E402
    PerturbedWalk,
    advance_walk,
)
from repro.persist import canonical_json  # noqa: E402
from repro.service import (  # noqa: E402
    CoverageService,
    execute_request,
    optimize_request,
    request_digest,
)
from repro.service.requests import build_cost  # noqa: E402
from repro.utils.rng import as_generator  # noqa: E402

DEFAULT_OUT = REPO / "benchmarks" / "results" / "BENCH_service.json"
WARM_FLOOR = 20.0
FANIN_FLOOR = 1.8
COPIES = 4


class CheckFailure(AssertionError):
    """A correctness claim the benchmark asserts did not hold."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def _requests(topology, seeds, iterations):
    return [
        optimize_request(
            topology, seed=seed,
            options={"max_iterations": iterations,
                     "trisection_rounds": 8},
        )
        for seed in seeds
    ]


def bench_warm_cache(topology, iterations, workdir: Path) -> dict:
    """Cold compute vs warm cache hit for one request; bit-identity."""
    request = _requests(topology, [0], iterations)[0]
    service = CoverageService(workdir / "warm-store")

    started = time.perf_counter()
    cold_payload = service.run(request)
    cold = time.perf_counter() - started

    hits = []
    for _ in range(5):
        started = time.perf_counter()
        warm_payload = service.run(request)
        hits.append(time.perf_counter() - started)
        _check(
            canonical_json(warm_payload) == canonical_json(cold_payload),
            "warm-cache payload differs from the cold computation",
        )
    warm = min(hits)
    _check(
        canonical_json(cold_payload)
        == canonical_json(execute_request(request)),
        "cached payload differs from a direct recomputation",
    )
    _check(service.stats.computed == 1,
           f"expected 1 computation, saw {service.stats.computed}")
    _check(service.stats.cache_hits == 5,
           f"expected 5 cache hits, saw {service.stats.cache_hits}")
    return {
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": cold / warm,
        "digest": request_digest(request),
    }


def bench_fan_in(topology, seeds, iterations, workdir: Path) -> dict:
    """Duplicate-heavy batch: fan-in service vs compute-every-submission.

    The no-dedup baseline executes each of the ``unique x COPIES``
    submissions independently — the pre-service idiom, where every
    caller runs its own optimizer.  The service must serve the same
    batch with exactly ``unique`` computations.
    """
    unique = _requests(topology, seeds, iterations)
    batch = [request for request in unique for _ in range(COPIES)]

    started = time.perf_counter()
    baseline_payloads = [execute_request(request) for request in batch]
    baseline = time.perf_counter() - started

    service = CoverageService(workdir / "fanin-store")
    started = time.perf_counter()
    payloads = service.run(batch)
    fanned = time.perf_counter() - started

    _check(
        service.stats.computed == len(unique),
        f"fan-in ran {service.stats.computed} computations for "
        f"{len(unique)} unique requests",
    )
    _check(
        service.stats.fan_in_joins == len(batch) - len(unique),
        f"expected {len(batch) - len(unique)} joins, saw "
        f"{service.stats.fan_in_joins}",
    )
    for served, computed in zip(payloads, baseline_payloads):
        _check(
            canonical_json(served) == canonical_json(computed),
            "fanned-in payload differs from independent recomputation",
        )
    return {
        "unique_requests": len(unique),
        "copies": COPIES,
        "submissions": len(batch),
        "no_dedup_seconds": baseline,
        "fan_in_seconds": fanned,
        "computed": service.stats.computed,
        "fan_in_joins": service.stats.fan_in_joins,
        "speedup": baseline / fanned,
    }


def check_resume_exactness(topology, workdir: Path) -> None:
    """Kill after the second accepted step; resume must be exact."""
    request = optimize_request(
        topology, seed=11,
        options={"max_iterations": 25, "trisection_rounds": 8},
    )
    reference = execute_request(request)

    service = CoverageService(workdir / "resume-store")
    checkpoint = service.checkpoint_for(request)
    cost = build_cost(request)
    options = coerce_options(
        OPTIMIZER_REGISTRY["perturbed"].options_class,
        request.params["options"], method="perturbed",
    )
    walk = PerturbedWalk(cost, None, as_generator(11), options)
    accepted = 0
    while advance_walk(cost, walk, options):
        if walk.accepted_steps > accepted:
            accepted = walk.accepted_steps
            checkpoint.save(walk.snapshot())
            if accepted >= 2:
                break  # the "kill"
    _check(checkpoint.exists(), "resume check: no checkpoint written")
    _check(not walk.finished, "resume check: walk finished before kill")

    resumed = service.run(request)
    _check(
        canonical_json(resumed) == canonical_json(reference),
        "resumed payload differs from the uninterrupted run",
    )
    _check(not checkpoint.exists(),
           "resume check: checkpoint survived completion")
    print("checkpoint resume exactness OK", flush=True)


def check_store_validity(workdir: Path) -> None:
    stores = [
        str(path) for path in sorted(workdir.glob("*-store"))
        if (path / "objects").is_dir()
    ]
    result = subprocess.run(
        [sys.executable,
         str(REPO / "tools" / "check_service_store.py"), *stores],
        capture_output=True, text=True,
    )
    _check(result.returncode == 0,
           f"store validation failed:\n{result.stderr}")
    print(f"store validity OK ({len(stores)} store(s))", flush=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check-only", action="store_true",
        help="small workload, assert bit-identity, both floors, resume "
        "exactness, and store validity; write nothing",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"results file (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    topology = repro.paper_topology(1)
    if args.check_only:
        iterations, seeds = 20, (0, 1)
    else:
        iterations, seeds = 120, (0, 1, 2)

    try:
        with tempfile.TemporaryDirectory(
            prefix="bench_service_"
        ) as tmp:
            workdir = Path(tmp)
            warm = bench_warm_cache(topology, iterations, workdir)
            print(
                f"warm cache: cold {warm['cold_seconds']:.3f}s | warm "
                f"{warm['warm_seconds'] * 1e3:.2f}ms -> "
                f"{warm['speedup']:.0f}x",
                flush=True,
            )
            fanin = bench_fan_in(topology, seeds, iterations, workdir)
            print(
                f"fan-in: {fanin['submissions']} submissions "
                f"({fanin['unique_requests']} unique x {COPIES}) "
                f"no-dedup {fanin['no_dedup_seconds']:.2f}s | service "
                f"{fanin['fan_in_seconds']:.2f}s "
                f"({fanin['computed']} computed, "
                f"{fanin['fan_in_joins']} joins) -> "
                f"{fanin['speedup']:.2f}x",
                flush=True,
            )
            check_resume_exactness(topology, workdir)
            check_store_validity(workdir)

        _check(
            warm["speedup"] >= WARM_FLOOR,
            f"warm-cache speedup {warm['speedup']:.1f}x below the "
            f"{WARM_FLOOR:.0f}x acceptance floor",
        )
        _check(
            fanin["speedup"] >= FANIN_FLOOR,
            f"duplicate-heavy speedup {fanin['speedup']:.2f}x below "
            f"the {FANIN_FLOOR:.1f}x acceptance floor",
        )
    except CheckFailure as failure:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1

    if args.check_only:
        print("all checks passed")
        return 0

    payload = {
        "benchmark": "BENCH_service",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "note": (
            "coverage service vs uncached recomputation on the paper "
            "topology: warm-cache serves a completed request from the "
            "content-addressed store (payload asserted bit-identical "
            "to a direct recomputation via canonical JSON); the "
            "duplicate-heavy batch submits every unique request "
            f"{COPIES}x and must run the optimizer exactly once per "
            "unique request (fan-in counters asserted), beating the "
            "compute-every-submission baseline; a job killed after "
            "its second accepted step must resume from its checkpoint "
            "to the uninterrupted run's exact payload",
        ),
        "floors": {
            "warm_cache_speedup": WARM_FLOOR,
            "fan_in_speedup": FANIN_FLOOR,
        },
        "workload": {
            "topology": "paper-1",
            "iterations": iterations,
            "seeds": list(seeds),
        },
        "warm_cache": warm,
        "fan_in": fanin,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
