#!/usr/bin/env python
"""Benchmark the sharded sweep driver against the naive per-setting loop.

Three claims are measured (see ``docs/sweeps.md``):

1. **Bit-identity** — a sweep's streamed records are identical, record
   for record, to running every cell through the pre-sweep idiom (a
   fresh process pool per scenario setting), and to a serial run.
2. **End-to-end speedup** — the sweep driver amortizes pool spawns and
   topology broadcasts across the whole grid (one pool per shard, one
   shared-memory store for the sweep), so it must be at least
   ``SPEEDUP_FLOOR``x faster than the naive loop, which pays worker
   spawn + import + re-broadcast for every setting.  The floor is
   asserted on full runs *and* ``--check-only`` smokes: it comes from
   eliminated fixed costs, not from compute scale.
3. **Resume exactness** — a sweep killed at a record boundary and
   resumed produces a merged shard set byte-identical to an
   uninterrupted run, with no cell duplicated (asserted via the
   canonical digest-sorted merge).

Results are written to ``benchmarks/results/BENCH_sweep.json`` with the
broadcast-hit ratio and both transfer directions (``dispatch_bytes``,
``result_bytes``).

Usage::

    python benchmarks/perf/bench_sweep.py               # full run
    python benchmarks/perf/bench_sweep.py --check-only  # CI smoke

``--check-only`` shrinks the grid, asserts bit-identity, the speedup
floor, resume exactness, schema validity
(``tools/check_sweep_schema.py``), and shm-segment leak freedom, and
writes nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.exec import ProcessExecutor  # noqa: E402
from repro.exec import shm  # noqa: E402
from repro.sweep import (  # noqa: E402
    ShardWriter,
    SweepGrid,
    build_topology,
    dedup_cells,
    merge_shards,
    run_sweep,
    shard_path,
    topology_key,
)
from repro.sweep.driver import _sweep_task  # noqa: E402

DEFAULT_OUT = REPO / "benchmarks" / "results" / "BENCH_sweep.json"
SPEEDUP_FLOOR = 2.0
TRANSPORTS = ("pickle", "shm")
JOBS = 2
SHARDS = 2


class CheckFailure(AssertionError):
    """A correctness claim the benchmark asserts did not hold."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def _grid(sizes, weights, seeds, iterations) -> SweepGrid:
    return SweepGrid(
        topologies=({"family": "city-grid", "sizes": list(sizes)},),
        weights=tuple(weights),
        methods=("adaptive",),
        seeds=tuple(seeds),
        iterations=iterations,
    )


def _setting_key(cell):
    """One scenario setting: the naive loop's unit of pool creation."""
    return topology_key(cell) + (
        cell.alpha, cell.beta, cell.epsilon, cell.method
    )


def run_naive(grid: SweepGrid, out_dir, transport: str) -> dict:
    """The pre-sweep idiom: a fresh process pool per scenario setting.

    Each setting spawns its own workers (paying interpreter start +
    import) and re-broadcasts its topology tensors from scratch; records
    stream to one shard file so the output is merge-comparable with a
    sweep directory.
    """
    unique, _ = dedup_cells(grid.expand())
    settings = {}
    for digest, cell in unique:
        settings.setdefault(_setting_key(cell), []).append((digest, cell))
    topologies = {}
    for _, cell in unique:
        key = topology_key(cell)
        if key not in topologies:
            topologies[key] = build_topology(cell)

    pools = 0
    started = time.perf_counter()
    with ShardWriter(shard_path(out_dir, 0)) as writer:
        for group in settings.values():
            tasks = [
                (cell, topologies[topology_key(cell)])
                for _, cell in group
            ]
            with ProcessExecutor(jobs=JOBS, transport=transport) as exe:
                pools += 1
                for record, _ in exe.map(_sweep_task, tasks):
                    writer.write_record(record)
    return {
        "wall_seconds": time.perf_counter() - started,
        "pools": pools,
        "settings": len(settings),
        "cells": len(unique),
    }


def bench_transport(grid: SweepGrid, transport: str, workdir: Path) -> dict:
    """Naive loop vs sweep driver under one transport; asserts bit-
    identity of the streamed records across both and against serial."""
    label = f"transport={transport}"
    naive_dir = workdir / f"naive-{transport}"
    sweep_dir = workdir / f"sweep-{transport}"
    serial_dir = workdir / f"serial-{transport}"

    naive = run_naive(grid, naive_dir, transport)

    started = time.perf_counter()
    report = run_sweep(
        grid, sweep_dir, shards=SHARDS, backend="process", jobs=JOBS,
        transport=transport,
    )
    sweep_wall = time.perf_counter() - started
    _check(report.ran_cells == naive["cells"],
           f"{label}: sweep ran {report.ran_cells} of {naive['cells']}")

    run_sweep(grid, serial_dir)  # the reference result set

    merged = {}
    for name, directory in (
        ("naive", naive_dir), ("sweep", sweep_dir), ("serial", serial_dir)
    ):
        target = workdir / f"{name}-{transport}.jsonl"
        merge_shards(directory, target)
        merged[name] = target.read_bytes()
    _check(merged["sweep"] == merged["naive"],
           f"{label}: sweep records differ from the naive loop's")
    _check(merged["sweep"] == merged["serial"],
           f"{label}: sweep records differ from the serial run's")

    return {
        "transport": transport,
        "cells": naive["cells"],
        "naive": {
            "wall_seconds": naive["wall_seconds"],
            "pools": naive["pools"],
            "settings": naive["settings"],
        },
        "sweep": {
            "wall_seconds": sweep_wall,
            "pools": SHARDS,
            "shards": SHARDS,
            "dispatch_bytes": report.dispatch_bytes,
            "result_bytes": report.result_bytes,
            "broadcast_requests": report.broadcast_requests,
            "broadcast_hits": report.broadcast_hits,
            "broadcast_hit_ratio": report.broadcast_hit_ratio,
        },
        "speedup": naive["wall_seconds"] / sweep_wall,
    }


def check_resume_exactness(grid: SweepGrid, workdir: Path) -> None:
    """Kill-at-a-record-boundary resume: merged bytes equal, no dups."""
    full_dir = workdir / "resume-full"
    killed_dir = workdir / "resume-killed"
    run_sweep(grid, full_dir, shards=SHARDS)
    interrupted = run_sweep(
        grid, killed_dir, shards=SHARDS,
        max_cells=max(1, len(dedup_cells(grid.expand())[0]) // 2),
    )
    _check(interrupted.interrupted,
           "resume check: the interrupted run was not interrupted")
    resumed = run_sweep(grid, killed_dir, shards=SHARDS, resume=True)
    _check(resumed.skipped_cells == interrupted.ran_cells,
           "resume check: completed cells were not all skipped")
    full = workdir / "resume-full.jsonl"
    killed = workdir / "resume-killed.jsonl"
    counts = (merge_shards(full_dir, full),
              merge_shards(killed_dir, killed))
    _check(counts[0] == counts[1],
           f"resume check: record counts differ: {counts}")
    _check(full.read_bytes() == killed.read_bytes(),
           "resume check: merged shard sets are not byte-identical")
    schema = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_sweep_schema.py"),
         str(full_dir), str(killed_dir)],
        capture_output=True, text=True,
    )
    _check(schema.returncode == 0,
           f"resume check: schema validation failed:\n{schema.stderr}")
    print("resume exactness + schema OK", flush=True)


def _leaked_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return None
    return sorted(
        name for name in os.listdir("/dev/shm")
        if name.startswith(shm.SEGMENT_PREFIX)
    )


def _print_cell(cell) -> None:
    ratio = cell["sweep"]["broadcast_hit_ratio"]
    print(
        f"  naive {cell['naive']['wall_seconds']:.2f}s "
        f"({cell['naive']['pools']} pools) | sweep "
        f"{cell['sweep']['wall_seconds']:.2f}s ({SHARDS} pools, "
        f"broadcast hits {ratio:.0%}, "
        f"dispatch {cell['sweep']['dispatch_bytes']:,} B, "
        f"results {cell['sweep']['result_bytes']:,} B) -> "
        f"{cell['speedup']:.2f}x",
        flush=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check-only", action="store_true",
        help="small grid, assert bit-identity, the speedup floor, "
        "resume exactness, and leak freedom; write nothing",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"results file (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    weights = ({"alpha": 1.0, "beta": 0.01}, {"alpha": 1.0, "beta": 0.5},
               {"alpha": 1.0, "beta": 1.0})
    if args.check_only:
        # One extra setting widens the naive loop's fixed-cost share so
        # the floor holds with margin even on slow, noisy CI machines.
        smoke_weights = weights + ({"alpha": 1.0, "beta": 0.1},)
        grid = _grid((36,), smoke_weights, seeds=(0, 1), iterations=2)
    else:
        grid = _grid((64, 144, 256), weights, seeds=(0, 1), iterations=3)
    resume_grid = _grid((36,), weights[:2], seeds=(0, 1), iterations=2)

    cells = []
    try:
        with tempfile.TemporaryDirectory(prefix="bench_sweep_") as tmp:
            workdir = Path(tmp)
            for transport in TRANSPORTS:
                print(f"transport={transport} ...", flush=True)
                cell = bench_transport(grid, transport, workdir)
                cells.append(cell)
                _print_cell(cell)
            check_resume_exactness(resume_grid, workdir)

        leaked = _leaked_segments()
        if leaked is not None:
            _check(not leaked, f"leaked shared-memory segments: {leaked}")
            print("no leaked shm segments", flush=True)

        for cell in cells:
            _check(
                cell["speedup"] >= SPEEDUP_FLOOR,
                f"transport={cell['transport']}: speedup "
                f"{cell['speedup']:.2f}x below the "
                f"{SPEEDUP_FLOOR:.1f}x acceptance floor",
            )
        shm_cell = next(c for c in cells if c["transport"] == "shm")
        _check(shm_cell["sweep"]["broadcast_hits"] > 0,
               "shm sweep recorded no broadcast hits")
        _check(shm_cell["sweep"]["result_bytes"] > 0,
               "shm sweep recorded no result bytes")
    except CheckFailure as failure:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1

    if args.check_only:
        print("all checks passed")
        return 0

    payload = {
        "benchmark": "BENCH_sweep",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "note": (
            "sharded sweep driver vs the naive per-setting loop on "
            f"{JOBS}-worker spawn pools: the naive loop opens a fresh "
            "pool per scenario setting (paying spawn + import + "
            "re-broadcast each time), the sweep driver opens one pool "
            f"per shard ({SHARDS} total) and retains one shared-memory "
            "store across pool generations so topology broadcasts "
            "survive; streamed records are asserted bit-identical "
            "across naive/sweep/serial per transport, and a killed "
            "sweep resumed at a record boundary must merge "
            "byte-identically to an uninterrupted one; "
            "broadcast_hit_ratio counts store broadcasts served from "
            "the surviving registry; dispatch_bytes/result_bytes are "
            "the serialized task and result payloads (the shm "
            "transport ships handles, not tensors, in both directions)"
        ),
        "floors": {"speedup": SPEEDUP_FLOOR},
        "grid": grid.to_dict(),
        "cells": cells,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
