#!/usr/bin/env python
"""Benchmark the execution backends and the LU-sharing hot path.

Two claims are measured (see ``docs/performance.md``):

1. **Factorization sharing** — with ``reuse_linesearch_state`` enabled
   the optimizer charges one dense factorization per accepted step (the
   batched line-search evaluation) instead of the historical three,
   while producing bit-identical trajectories.
2. **Backend scaling** — ``run_many`` over independent seeds returns
   bit-identical results on the serial/thread/process backends, with
   wall-clock scaling limited only by the machine's cores.

Results are written to ``benchmarks/results/BENCH_parallel.json`` with
the host's CPU count recorded, so a 1-core container reporting a ~1x
process-backend "speedup" is an honest measurement, not a regression.

Usage::

    python benchmarks/perf/bench_parallel.py               # full run
    python benchmarks/perf/bench_parallel.py --check-only  # CI smoke

``--check-only`` shrinks every size, asserts the correctness claims
(bit-identity, counter budgets), skips writing the results file, and
exits nonzero on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro import CostWeights, CoverageCost  # noqa: E402
from repro.core.perturbed import (  # noqa: E402
    PerturbedOptions,
    optimize_perturbed,
)
from repro.exec import BACKENDS, get_executor  # noqa: E402
from repro.experiments.runner import run_many  # noqa: E402
from repro.topology.random_gen import random_topology  # noqa: E402

DEFAULT_OUT = REPO / "benchmarks" / "results" / "BENCH_parallel.json"


class CheckFailure(AssertionError):
    """A correctness claim the benchmark asserts did not hold."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def _cost(size: int, seed: int) -> CoverageCost:
    topology = random_topology(size, seed=seed)
    return CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))


def bench_factorization_sharing(size: int, iterations: int, seed: int):
    """Reuse on vs off: identical trajectories, 3x fewer factorizations."""
    cost = _cost(size, seed)
    results = {}
    for reuse in (True, False):
        options = PerturbedOptions(
            max_iterations=iterations, record_history=False,
            stall_limit=iterations + 1, reuse_linesearch_state=reuse,
        )
        started = time.perf_counter()
        result = optimize_perturbed(cost, seed=seed, options=options)
        results[reuse] = {
            "best_u_eps": result.best_u_eps,
            "best_matrix": result.best_matrix,
            "seconds": time.perf_counter() - started,
            "accepted_steps": result.perf.accepted_steps,
            "accept_factorizations": result.perf.accept_factorizations,
            "factorizations": result.perf.factorizations,
            "per_accepted_step":
                result.perf.factorizations_per_accepted_step(),
        }
    on, off = results[True], results[False]
    _check(
        on["best_u_eps"] == off["best_u_eps"]
        and np.array_equal(on["best_matrix"], off["best_matrix"]),
        "reuse on/off trajectories diverged",
    )
    _check(on["accepted_steps"] > 0, "no accepted steps; sizes too small")
    _check(
        on["per_accepted_step"] <= 1.0,
        f"reuse path charged {on['per_accepted_step']} "
        "factorizations/accept (expected <= 1)",
    )
    _check(
        off["per_accepted_step"] >= 3.0,
        f"scratch path charged {off['per_accepted_step']} "
        "factorizations/accept (expected >= 3)",
    )
    for entry in (on, off):
        del entry["best_matrix"]
        entry["best_u_eps"] = float(entry["best_u_eps"])
    return {
        "topology_size": size,
        "iterations": iterations,
        "seed": seed,
        "reuse": on,
        "scratch": off,
        "trajectories_bit_identical": True,
        "scalar_factorizations_saved":
            off["factorizations"] - on["factorizations"],
    }


def bench_backends(size: int, runs: int, iterations: int, seed: int,
                   jobs: int):
    """run_many across backends: bit-identical results, wall-clock."""
    cost = _cost(size, seed)
    timings = {}
    reference = None
    for backend in BACKENDS:
        with get_executor(backend, jobs=jobs) as executor:
            started = time.perf_counter()
            results = run_many(
                cost, "perturbed", runs=runs, iterations=iterations,
                seed=seed, executor=executor,
            )
            wall = time.perf_counter() - started
        u_eps = [float(result.best_u_eps) for result in results]
        if reference is None:
            reference = u_eps
        _check(
            u_eps == reference,
            f"{backend} backend results differ from serial",
        )
        timings[backend] = {"wall_seconds": wall, "best_u_eps": u_eps}
    serial_wall = timings["serial"]["wall_seconds"]
    for backend, entry in timings.items():
        entry["speedup_vs_serial"] = serial_wall / entry["wall_seconds"]
    return {
        "topology_size": size,
        "runs": runs,
        "iterations": iterations,
        "seed": seed,
        "jobs": jobs,
        "bit_identical_across_backends": True,
        "backends": timings,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check-only", action="store_true",
        help="tiny sizes, assert correctness claims, write nothing",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"results file (default: {DEFAULT_OUT})",
    )
    parser.add_argument("--size", type=int, default=10,
                        help="random-topology PoI count")
    parser.add_argument("--runs", type=int, default=8,
                        help="independent seeds for the backend sweep")
    parser.add_argument("--iterations", type=int, default=120)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--jobs", type=int, default=os.cpu_count(),
                        help="workers for the pool backends")
    args = parser.parse_args(argv)

    if args.check_only:
        args.size, args.runs, args.iterations = 5, 2, 8

    try:
        print(f"factorization sharing: {args.size} PoIs, "
              f"{args.iterations} iterations ...", flush=True)
        sharing = bench_factorization_sharing(
            args.size, args.iterations, args.seed
        )
        print(f"  reuse:   {sharing['reuse']['per_accepted_step']:.2f} "
              f"factorizations/accept, "
              f"{sharing['reuse']['seconds']:.2f}s")
        print(f"  scratch: {sharing['scratch']['per_accepted_step']:.2f} "
              f"factorizations/accept, "
              f"{sharing['scratch']['seconds']:.2f}s")

        print(f"backend sweep: {args.runs} seeds x {args.iterations} "
              f"iterations, jobs={args.jobs} ...", flush=True)
        backends = bench_backends(
            args.size, args.runs, args.iterations, args.seed, args.jobs
        )
        for name, entry in backends["backends"].items():
            print(f"  {name:<8} {entry['wall_seconds']:.2f}s "
                  f"({entry['speedup_vs_serial']:.2f}x vs serial)")
    except CheckFailure as failure:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1

    if args.check_only:
        print("all checks passed")
        return 0

    payload = {
        "benchmark": "BENCH_parallel",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "note": (
            "speedup_vs_serial is bounded by cpu_count; on a 1-core "
            "host the process backend measures pool overhead, not "
            "scaling"
        ),
        "factorization_sharing": sharing,
        "backend_sweep": backends,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
