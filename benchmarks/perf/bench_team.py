#!/usr/bin/env python
"""Benchmark the vectorized team engine against the per-event loop.

Two claims are measured (see ``docs/performance.md`` and
``docs/simulation.md``):

1. **Equivalence** — for every benchmarked configuration the two engines
   return bit-identical :class:`TeamSimulationResult` objects (every
   field equal, nan-positions included), and the result passes the
   internal union cross-checks of
   :func:`repro.multisensor.analytic.check_team_result`.
2. **Speedup** — the vectorized engine (per-sensor pre-sampled paths +
   shared interval kernels) beats the per-event loop; the acceptance
   floor is 5x on every cell with K >= 4 sensors.

Results are written to ``benchmarks/results/BENCH_team.json``.  Chord
tables are warmed before timing so both engines are measured on the
per-transition work, not the shared O(M^3) geometry precompute.

Usage::

    python benchmarks/perf/bench_team.py               # full run
    python benchmarks/perf/bench_team.py --check-only  # CI smoke

``--check-only`` shrinks every size, asserts the equivalence claim,
skips writing the results file, and exits nonzero on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import fields
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.multisensor import check_team_result, simulate_team  # noqa: E402
from repro.topology.random_gen import random_topology  # noqa: E402

DEFAULT_OUT = REPO / "benchmarks" / "results" / "BENCH_team.json"

#: (PoI count, team size K, horizon seconds) grid of the full run.  The
#: two K >= 4 cells carry the acceptance claim: >= 5x each.
FULL_GRID = (
    (8, 2, 1_500_000.0),
    (16, 4, 2_000_000.0),
    (32, 8, 2_500_000.0),
)
SMOKE_GRID = ((5, 2, 2_000.0), (5, 4, 2_000.0))
SPEEDUP_FLOOR = 5.0


class CheckFailure(AssertionError):
    """A correctness claim the benchmark asserts did not hold."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def _results_identical(loop, vectorized) -> list:
    """Names of TeamSimulationResult fields that differ between engines."""
    mismatched = []
    for field in fields(loop):
        expected = np.asarray(getattr(loop, field.name))
        actual = np.asarray(getattr(vectorized, field.name))
        equal_nan = expected.dtype.kind == "f"
        if expected.shape != actual.shape or not np.array_equal(
            actual, expected, equal_nan=equal_nan
        ):
            mismatched.append(field.name)
    return mismatched


def bench_cell(size: int, sensors: int, horizon: float, seed: int,
               repeats: int = 3):
    """Time both engines on one (size, K, horizon) configuration.

    Each engine runs ``repeats`` times and reports the fastest wall
    clock (steady state: the first run additionally pays allocator and
    page-fault costs that are not per-simulation work).
    """
    topology = random_topology(
        size, area_side=400.0 * np.sqrt(size), seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    raw = rng.random((size, size)) + np.eye(size)
    matrix = raw / raw.sum(axis=1, keepdims=True)
    matrices = [matrix] * sensors
    topology.chord_table()  # warm the shared geometry outside the timing

    timings = {}
    results = {}
    for engine in ("loop", "vectorized"):
        best = np.inf
        for _ in range(repeats):
            started = time.perf_counter()
            results[engine] = simulate_team(
                topology, matrices, horizon, seed=seed, engine=engine
            )
            best = min(best, time.perf_counter() - started)
        timings[engine] = best

    mismatched = _results_identical(results["loop"], results["vectorized"])
    _check(
        not mismatched,
        f"{size} PoIs / K={sensors}: engines disagree on "
        f"{', '.join(mismatched)}",
    )
    try:
        check_team_result(results["vectorized"])
    except ValueError as error:
        raise CheckFailure(str(error)) from error
    speedup = timings["loop"] / timings["vectorized"]
    return {
        "topology_size": size,
        "sensors": sensors,
        "horizon": horizon,
        "mean_transitions_per_sensor": float(
            results["vectorized"].transitions.mean()
        ),
        "seed": seed,
        "loop_seconds": timings["loop"],
        "vectorized_seconds": timings["vectorized"],
        "speedup": speedup,
        "bit_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check-only", action="store_true",
        help="tiny sizes, assert the equivalence claim, write nothing",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"results file (default: {DEFAULT_OUT})",
    )
    parser.add_argument("--seed", type=int, default=2010)
    args = parser.parse_args(argv)

    grid = SMOKE_GRID if args.check_only else FULL_GRID

    cells = []
    try:
        for size, sensors, horizon in grid:
            print(f"{size} PoIs x K={sensors} x {horizon:.0f} s ...",
                  flush=True)
            cell = bench_cell(size, sensors, horizon, args.seed)
            cells.append(cell)
            print(f"  loop {cell['loop_seconds']:.2f}s, vectorized "
                  f"{cell['vectorized_seconds']:.2f}s -> "
                  f"{cell['speedup']:.1f}x, bit-identical")
        if not args.check_only:
            for cell in cells:
                if cell["sensors"] >= 4:
                    _check(
                        cell["speedup"] >= SPEEDUP_FLOOR,
                        f"K={cell['sensors']} speedup "
                        f"{cell['speedup']:.1f}x below the "
                        f"{SPEEDUP_FLOOR:.0f}x acceptance floor",
                    )
    except CheckFailure as failure:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1

    if args.check_only:
        print("all checks passed")
        return 0

    payload = {
        "benchmark": "BENCH_team",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "note": (
            "speedup = loop_seconds / vectorized_seconds per cell; both "
            "engines produce bit-identical TeamSimulationResult values, "
            "checked field-by-field each run; cells with K >= 4 enforce "
            "the 5x acceptance floor"
        ),
        "cells": cells,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
