"""Benchmark: Fig. 6 — simulated vs computed dC and E (Topology 2)."""

import numpy as np

from bench_utils import run_once

from repro.experiments import figure6


def test_figure6(benchmark, record_result):
    figure = run_once(benchmark, figure6, seed=0)
    record_result("figure6", figure.render())
    by_label = {s.label: s for s in figure.series}
    # Paper: with beta=0 the simulated metrics match the computed ones.
    np.testing.assert_allclose(
        by_label["dC simulated"].y, by_label["dC computed"].y, rtol=0.2
    )
    np.testing.assert_allclose(
        by_label["E simulated"].y, by_label["E computed"].y, rtol=0.2
    )
