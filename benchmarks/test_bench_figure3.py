"""Benchmark: Fig. 3 — basic-algorithm traces for several weightings."""

from bench_utils import run_once

from repro.experiments import figure3


def test_figure3(benchmark, record_result):
    figure = run_once(benchmark, figure3)
    record_result("figure3", figure.render())
    # Shape: every trace ends below where it started.
    for series in figure.series:
        assert series.y[-1] < series.y[0]
