"""Benchmark: B1 — baselines vs steepest descent."""

from bench_utils import run_once

from repro.experiments import baseline_comparison


def test_baseline_comparison(benchmark, record_result):
    table = run_once(benchmark, baseline_comparison, seed=0)
    record_result("baseline_b1", table.render())
    by_label = {row[0]: row for row in table.rows}
    ours = by_label["steepest descent (ours)"]
    for label, row in by_label.items():
        if label != "steepest descent (ours)":
            assert ours[3] <= row[3] + 1e-9
