"""Benchmark: Table II — per-PoI exposure times across the sweep."""

from bench_utils import run_once

from repro.experiments import table2
from test_bench_table1 import shared_sweep


def test_table2(benchmark, record_result):
    table = run_once(benchmark, lambda: table2(sweep=shared_sweep()))
    record_result("table2", table.render())
    # Shape: exposure grows monotonically in sweep order (beta decreasing
    # from the 1:1 row onward).
    maxima = [max(row[1:]) for row in table.rows[1:]]
    assert all(a <= b * 1.05 for a, b in zip(maxima, maxima[1:]))
