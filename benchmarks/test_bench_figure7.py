"""Benchmark: Fig. 7 — simulated vs computed dC and E (Topology 4)."""

import numpy as np

from bench_utils import run_once

from repro.experiments import figure7


def test_figure7(benchmark, record_result):
    figure = run_once(benchmark, figure7, seed=0)
    record_result("figure7", figure.render())
    by_label = {s.label: s for s in figure.series}
    np.testing.assert_allclose(
        by_label["dC simulated"].y, by_label["dC computed"].y, rtol=0.2
    )
