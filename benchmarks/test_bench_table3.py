"""Benchmark: Table III — adaptive vs perturbed over many runs."""

from bench_utils import run_once

from repro.experiments import table3


def test_table3(benchmark, record_result):
    table = run_once(benchmark, table3, seed=0)
    record_result("table3", table.render())
    adaptive, perturbed = table.rows
    spread_adaptive = adaptive[2] - adaptive[1]
    spread_perturbed = perturbed[2] - perturbed[1]
    # Paper: the adaptive spread greatly exceeds the perturbed spread,
    # and the perturbed average is better.
    assert spread_adaptive > spread_perturbed
    assert perturbed[3] <= adaptive[3]
