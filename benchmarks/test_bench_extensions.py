"""Benchmarks: Section VII extensions (energy, entropy)."""

from bench_utils import run_once

from repro.experiments import extension_energy, extension_entropy


def test_extension_energy(benchmark, record_result):
    table = run_once(benchmark, extension_energy, seed=0)
    record_result("extension_e1_energy", table.render())


def test_extension_entropy(benchmark, record_result):
    table = run_once(benchmark, extension_entropy, seed=0)
    record_result("extension_e2_entropy", table.render())
    entropies = [row[1] for row in table.rows]
    # Larger entropy weights never decrease the achieved entropy much.
    assert entropies[-1] >= entropies[0] - 1e-6


def test_extension_team(benchmark, record_result):
    from repro.experiments import extension_team

    table = run_once(benchmark, extension_team, seed=0)
    record_result("extension_e3_team", table.render())
    coverages = [row[1] for row in table.rows]
    # Coverage grows with team size; prediction tracks measurement.
    assert all(a < b for a, b in zip(coverages, coverages[1:]))
    for row in table.rows:
        assert row[2] == __import__("pytest").approx(row[1], rel=0.15)


def test_extension_capture(benchmark, record_result):
    from repro.experiments import extension_capture

    table = run_once(benchmark, extension_capture, seed=0)
    record_result("extension_e4_capture", table.render())
    captures = [row[1] for row in table.rows]
    # Capture degrades from the high-beta end to the low-beta end.
    assert captures[-1] < captures[0]
