"""Shared infrastructure for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md section 5), times it with pytest-benchmark, and writes the
rendered rows/series to ``benchmarks/results/<experiment>.txt`` so the
reproduction output is inspectable after the run.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_PAPER_SCALE=1`` for the paper's full run counts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the rendered experiment outputs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write one experiment's rendered output to the results directory."""

    def writer(name: str, rendered: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(rendered + "\n")
        # Also echo to stdout so `pytest -s` shows the tables inline.
        print(f"\n{rendered}")

    return writer
