"""Benchmark: Table IV — realized metrics from actual simulations."""

from bench_utils import run_once

from repro.experiments import table4


def test_table4(benchmark, record_result):
    table = run_once(benchmark, table4, seed=0)
    record_result("table4", table.render())
    rows = {row[0]: row for row in table.rows}
    # Paper: beta=0 gives the smallest dC and a much larger E-bar than
    # any beta > 0 setting.
    assert rows["1:0"][1] <= min(r[1] for r in table.rows)
    assert rows["1:0"][3] >= max(r[3] for r in table.rows)
