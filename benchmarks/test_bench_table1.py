"""Benchmark: Table I — coverage shares across the alpha:beta sweep.

The sweep is shared with Table II; this module owns the computation and
test_bench_table2 reuses its cached result via the module-level cache in
repro.experiments.tables (recomputed when run standalone).
"""

import numpy as np

from bench_utils import run_once

from repro import paper_topology
from repro.experiments import run_weight_sweep, table1

_CACHE = {}


def shared_sweep(seed=0):
    if "sweep" not in _CACHE:
        _CACHE["sweep"] = run_weight_sweep(seed=seed)
    return _CACHE["sweep"]


def test_table1(benchmark, record_result):
    table = run_once(benchmark, lambda: table1(sweep=shared_sweep()))
    record_result("table1", table.render())
    # Shape: the beta=0 row approaches the target allocation.
    phi = paper_topology(3).target_shares
    final_row = np.array(table.rows[-2][1:], dtype=float)
    assert np.abs(final_row - phi).max() < 0.05
