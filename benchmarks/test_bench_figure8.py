"""Benchmark: Fig. 8 — dC, E, and U with a small beta (Topology 1)."""

import numpy as np

from bench_utils import run_once

from repro.experiments import figure8


def test_figure8(benchmark, record_result):
    figure = run_once(benchmark, figure8, seed=0)
    record_result("figure8", figure.render())
    by_label = {s.label: s for s in figure.series}
    # Paper: the simulated U closely tracks (but does not exactly match)
    # the computed U when beta > 0.
    np.testing.assert_allclose(
        by_label["U simulated"].y, by_label["U computed"].y, rtol=0.25
    )
