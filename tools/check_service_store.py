#!/usr/bin/env python
"""Validate the layout and integrity of one or more service stores.

For each given store root (see :mod:`repro.service.store`), every
record under ``objects/`` must:

* live at ``objects/<aa>/<digest>.json`` with ``aa == digest[:2]`` and
  a 64-hex-digit digest filename,
* carry the ``repro/service-result/v1`` schema tag and verify against
  its own ``payload_digest`` *and* its filename digest
  (:func:`repro.persist.verify_service_record` — the same check every
  cache read performs),
* name a known job kind and carry a ``result`` mapping (``optimize``
  payloads must also carry their ``matrix``).

``checkpoints/*.json`` files, when present, must parse as
``repro/walk-snapshot/v1`` snapshots — they are the resume state of
in-flight jobs, and a malformed one silently degrades resume to a
restart.  Stray ``*.tmp`` files are fine: they are the footprint of a
killed atomic write and are never read.  Run from anywhere::

    python tools/check_service_store.py STORE_DIR [STORE_DIR ...]

Exit status is nonzero if any record violates the contract, with one
line per offender.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.core.perturbed import WALK_SNAPSHOT_SCHEMA  # noqa: E402
from repro.persist import verify_service_record  # noqa: E402
from repro.service.requests import KINDS  # noqa: E402
from repro.service.store import OBJECTS_DIR  # noqa: E402

DIGEST = re.compile(r"^[0-9a-f]{64}$")


def check_object(path: Path) -> list:
    """Problems with one stored record (empty list when valid)."""
    problems = []
    digest = path.stem
    if not DIGEST.match(digest):
        return [f"{path}: filename is not a 64-hex digest"]
    if path.parent.name != digest[:2]:
        problems.append(
            f"{path}: filed under shard {path.parent.name!r}, "
            f"expected {digest[:2]!r}"
        )
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        problems.append(f"{path}: unreadable: {exc}")
        return problems
    try:
        payload = verify_service_record(record, expected_digest=digest)
    except ValueError as exc:
        problems.append(f"{path}: {exc}")
        return problems
    kind = record.get("kind")
    if kind not in KINDS:
        problems.append(f"{path}: unknown kind {kind!r}")
        return problems
    if not isinstance(payload.get("result"), dict):
        problems.append(f"{path}: payload missing result mapping")
    if kind == "optimize" and not isinstance(
        payload.get("matrix"), list
    ):
        problems.append(f"{path}: optimize payload missing matrix")
    return problems


def check_checkpoint(path: Path) -> list:
    """Problems with one in-flight job checkpoint."""
    if not DIGEST.match(path.stem):
        return [f"{path}: checkpoint name is not a request digest"]
    try:
        snapshot = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]
    schema = snapshot.get("schema") if isinstance(snapshot, dict) else None
    if schema != WALK_SNAPSHOT_SCHEMA:
        return [
            f"{path}: snapshot schema {schema!r} != "
            f"{WALK_SNAPSHOT_SCHEMA!r}"
        ]
    return []


def check_store(root: Path) -> list:
    """Problems across one store directory."""
    objects = root / OBJECTS_DIR
    if not objects.is_dir():
        return [f"{root}: no {OBJECTS_DIR}/ directory (not a store?)"]
    problems = []
    count = 0
    for shard in sorted(objects.iterdir()):
        if not shard.is_dir():
            problems.append(f"{shard}: stray file in {OBJECTS_DIR}/")
            continue
        for entry in sorted(shard.iterdir()):
            if entry.suffix == ".tmp":
                continue  # killed atomic write; never read
            count += 1
            problems.extend(check_object(entry))
    checkpoints = root / "checkpoints"
    if checkpoints.is_dir():
        for entry in sorted(checkpoints.glob("*.json")):
            problems.extend(check_checkpoint(entry))
    if count == 0:
        problems.append(f"{root}: store holds no records")
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv:
        print(
            "usage: check_service_store.py STORE_DIR [STORE_DIR ...]",
            file=sys.stderr,
        )
        return 2
    problems = []
    for name in argv:
        problems.extend(check_store(Path(name)))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} store violation(s)", file=sys.stderr)
        return 1
    print("service store OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
