#!/usr/bin/env python
"""Validate the shard records of one or more sweep directories.

For every ``shard-*.jsonl`` in each given directory, every whole record
must:

* carry the ``repro/sweep-cell/v1`` schema tag,
* carry a 64-hex-digit ``digest`` that matches the digest recomputed
  from its ``cell`` (the resume identity — a mismatch means records
  and cells have drifted apart and resume would mis-skip),
* round-trip its ``cell`` through :class:`repro.sweep.SweepCell`,
* carry the full numeric ``result`` key set.

Across all shards of one directory, no digest may appear twice (a
duplicated cell is a sweep bug, never an artifact of resume).  Partial
trailing lines are fine — they are the footprint of a killed write and
are exactly what resume ignores.  Run from anywhere::

    python tools/check_sweep_schema.py SWEEP_DIR [SWEEP_DIR ...]

Exit status is nonzero if any record violates the schema, with one
line per offender.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.sweep import (  # noqa: E402
    CELL_SCHEMA,
    cell_digest,
    cell_from_dict,
    list_shards,
    read_records,
)

DIGEST = re.compile(r"^[0-9a-f]{64}$")

#: Required ``result`` keys and the types their values must satisfy.
RESULT_KEYS = {
    "u": (int, float),
    "u_eps": (int, float),
    "best_u_eps": (int, float),
    "delta_c": (int, float),
    "e_bar": (int, float),
    "iterations": (int,),
    "converged": (bool,),
    "stop_reason": (str,),
}


def check_record(record: dict, where: str) -> list:
    """Problems with one record (empty list when it is valid)."""
    problems = []
    if record.get("schema") != CELL_SCHEMA:
        problems.append(
            f"{where}: schema {record.get('schema')!r} != {CELL_SCHEMA!r}"
        )
    digest = record.get("digest")
    if not isinstance(digest, str) or not DIGEST.match(digest):
        problems.append(f"{where}: malformed digest {digest!r}")
        return problems
    try:
        cell = cell_from_dict(record["cell"])
    except (KeyError, TypeError, ValueError) as exc:
        problems.append(f"{where}: bad cell: {exc}")
        return problems
    recomputed = cell_digest(cell)
    if recomputed != digest:
        problems.append(
            f"{where}: digest {digest} does not match the cell "
            f"(recomputed {recomputed})"
        )
    result = record.get("result")
    if not isinstance(result, dict):
        problems.append(f"{where}: missing result mapping")
        return problems
    for key, types in RESULT_KEYS.items():
        value = result.get(key)
        # bool is an int subclass; an int-typed key must not be a bool
        if not isinstance(value, types) or (
            bool not in types and isinstance(value, bool)
        ):
            problems.append(
                f"{where}: result[{key!r}] = {value!r} is not "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    return problems


def check_directory(directory: Path) -> list:
    """Problems across every shard of one sweep directory."""
    problems = []
    shards = list_shards(directory)
    if not shards:
        problems.append(f"{directory}: no shard-*.jsonl files")
        return problems
    seen = {}
    for shard in shards:
        try:
            records = list(read_records(shard))
        except ValueError as exc:
            problems.append(str(exc))
            continue
        for number, record in enumerate(records, start=1):
            where = f"{shard}:{number}"
            problems.extend(check_record(record, where))
            digest = record.get("digest")
            if digest in seen:
                problems.append(
                    f"{where}: digest {digest} already written at "
                    f"{seen[digest]}"
                )
            else:
                seen[digest] = where
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv:
        print(
            "usage: check_sweep_schema.py SWEEP_DIR [SWEEP_DIR ...]",
            file=sys.stderr,
        )
        return 2
    problems = []
    for name in argv:
        problems.extend(check_directory(Path(name)))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} schema violation(s)", file=sys.stderr)
        return 1
    print("sweep schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
