#!/usr/bin/env python
"""Fail on dead relative links in README.md and docs/*.md.

Scans Markdown inline links (``[text](target)``) in the repository's
top-level README and every file under ``docs/``.  External targets
(``http(s)://``, ``mailto:``) and pure fragments (``#section``) are
skipped; everything else is resolved relative to the file that contains
the link and must exist on disk.  Run from anywhere::

    python tools/check_doc_links.py

Exit status is nonzero if any link is dead, with one line per offender.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

# Inline links only; reference-style links are not used in this repo.
# The target group stops at the first ')' or whitespace, which is
# sufficient for the plain paths used here (no nested parentheses).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def dead_links(path: Path) -> list:
    """Return (target, resolved) pairs in *path* that do not exist."""
    missing = []
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            missing.append((target, resolved))
    return missing


def main() -> int:
    documents = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    checked = 0
    broken = 0
    for document in documents:
        if not document.exists():
            print(f"MISSING DOCUMENT: {document}", file=sys.stderr)
            broken += 1
            continue
        checked += 1
        for target, resolved in dead_links(document):
            relative = document.relative_to(REPO)
            print(f"DEAD LINK: {relative}: ({target}) -> {resolved}",
                  file=sys.stderr)
            broken += 1
    if broken:
        print(f"{broken} dead link(s) across {checked} document(s)",
              file=sys.stderr)
        return 1
    print(f"all relative links resolve across {checked} document(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
