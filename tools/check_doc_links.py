#!/usr/bin/env python
"""Fail on dead relative links or anchors in README.md and docs/*.md.

Scans Markdown inline links (``[text](target)``) in the repository's
top-level README and every file under ``docs/``.  External targets
(``http(s)://``, ``mailto:``) are skipped; everything else is resolved
relative to the file that contains the link and must exist on disk.
``#fragment`` parts — both same-file ``#section`` links and
``file.md#section`` links — must additionally match a heading in the
target document (GitHub's slug rule: lowercase, punctuation stripped,
spaces to hyphens).  Run from anywhere::

    python tools/check_doc_links.py

Exit status is nonzero if any link is dead, with one line per offender.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

# Inline links only; reference-style links are not used in this repo.
# The target group stops at the first ')' or whitespace, which is
# sufficient for the plain paths used here (no nested parentheses).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_PREFIXES = ("http://", "https://", "mailto:")

_slug_strip = re.compile(r"[^\w\s-]")


def heading_slug(text: str) -> str:
    """GitHub's anchor slug for a heading: strip markup and punctuation,
    lowercase, spaces to hyphens."""
    # Drop inline-code backticks and emphasis markers before slugging.
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = _slug_strip.sub("", text.strip().lower())
    return re.sub(r"\s+", "-", text)


def document_anchors(path: Path, cache: dict) -> set:
    """The set of heading anchors available in *path* (cached)."""
    if path not in cache:
        try:
            source = path.read_text()
        except OSError:
            cache[path] = set()
        else:
            cache[path] = {
                heading_slug(match.group(1))
                for match in HEADING.finditer(source)
            }
    return cache[path]


def dead_links(path: Path, anchor_cache: dict) -> list:
    """Return (target, problem) pairs in *path* that do not resolve."""
    missing = []
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve() if file_part else path
        if not resolved.exists():
            missing.append((target, f"missing file {resolved}"))
            continue
        if fragment and resolved.suffix == ".md":
            anchors = document_anchors(resolved, anchor_cache)
            if fragment.lower() not in anchors:
                missing.append(
                    (target, f"no heading #{fragment} in {resolved.name}")
                )
    return missing


def main() -> int:
    documents = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    anchor_cache: dict = {}
    checked = 0
    broken = 0
    for document in documents:
        if not document.exists():
            print(f"MISSING DOCUMENT: {document}", file=sys.stderr)
            broken += 1
            continue
        checked += 1
        for target, problem in dead_links(document, anchor_cache):
            relative = document.relative_to(REPO)
            print(f"DEAD LINK: {relative}: ({target}) -> {problem}",
                  file=sys.stderr)
            broken += 1
    if broken:
        print(f"{broken} dead link(s) across {checked} document(s)",
              file=sys.stderr)
        return 1
    print(f"all relative links and anchors resolve across "
          f"{checked} document(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
